package analysis

import (
	"go/ast"
)

// LockSendAnalyzer flags blocking fan-out while holding a mutex:
// channel sends and calls to the dataplane's ProcessBatch executed
// between a sync.Mutex/RWMutex Lock (or RLock) and its Unlock. Both can
// block for an unbounded time — a send until a receiver arrives,
// ProcessBatch until every worker shard drains its share — so holding a
// lock across them turns a local critical section into a system-wide
// convoy (and, with the wrong receiver, a deadlock). PR 1's shard locks
// stay correct precisely because they never wrap a blocking operation;
// this analyzer pins that invariant.
//
// The analysis is an intra-procedural, syntactic approximation: it
// scans each function body in statement order, tracking Lock/Unlock
// pairs on the same rendered receiver expression. A deferred Unlock
// keeps the lock held until function end. Locks taken inside a branch
// are tracked within that branch only.
var LockSendAnalyzer = &Analyzer{
	Name: "camus-locksend",
	Doc:  "flag channel sends or ProcessBatch fan-out while holding a mutex",
	Run:  runLockSend,
}

func runLockSend(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanLockRegions(pass, fn.Body, map[string]bool{})
				}
			case *ast.FuncLit:
				// Function literals get a fresh state: a goroutine body
				// does not inherit the spawner's locks. (Immediately
				// invoked literals are approximated the same way.) The
				// statement scanner never descends into literals, so this
				// is the only scan of the body; returning true lets
				// Inspect reach literals nested deeper still.
				scanLockRegions(pass, fn.Body, map[string]bool{})
			}
			return true
		})
	}
}

// scanLockRegions walks stmts in order, maintaining the set of held
// lock keys, and reports blocking operations while the set is
// non-empty. Branch bodies are scanned with a copy of the held set so a
// lock taken inside one arm does not leak into the fallthrough path.
func scanLockRegions(pass *Pass, body *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range body.List {
		scanStmt(pass, stmt, held)
	}
}

func scanStmt(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, locked, ok := lockOp(pass, s.X); ok {
			if locked {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		checkBlockingExpr(pass, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held for
		// the rest of the scan. A deferred Lock would be bizarre; ignore.
		if _, _, ok := lockOp(pass, s.Call); !ok {
			checkBlockingExpr(pass, s.Call, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Arrow, "channel send while holding %s", heldList(held))
		}
		checkBlockingExpr(pass, s.Chan, held)
		checkBlockingExpr(pass, s.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkBlockingExpr(pass, rhs, held)
		}
		for _, lhs := range s.Lhs {
			checkBlockingExpr(pass, lhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkBlockingExpr(pass, r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		checkBlockingExpr(pass, s.Cond, held)
		scanLockRegions(pass, s.Body, copyHeld(held))
		if s.Else != nil {
			scanStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		scanLockRegions(pass, s.Body, copyHeld(held))
	case *ast.RangeStmt:
		checkBlockingExpr(pass, s.X, held)
		scanLockRegions(pass, s.Body, copyHeld(held))
	case *ast.BlockStmt:
		scanLockRegions(pass, s, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					scanStmt(pass, st, sub)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					scanStmt(pass, st, sub)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := copyHeld(held)
				if cc.Comm != nil {
					scanStmt(pass, cc.Comm, sub)
				}
				for _, st := range cc.Body {
					scanStmt(pass, st, sub)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine runs without the spawner's locks; its FuncLit
		// body is scanned independently by runLockSend.
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, held)
	}
}

// lockOp recognizes <expr>.Lock/RLock/Unlock/RUnlock() on a sync
// mutex and returns the rendered receiver as the lock key.
func lockOp(pass *Pass, e ast.Expr) (key string, locked, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var isLock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
		isLock = false
	default:
		return "", false, false
	}
	s, found := pass.TypesInfo().Selections[sel]
	if !found {
		return "", false, false
	}
	if !namedType(s.Recv(), "sync", "Mutex") && !namedType(s.Recv(), "sync", "RWMutex") {
		return "", false, false
	}
	return exprString(sel.X), isLock, true
}

// checkBlockingExpr reports ProcessBatch calls (the dataplane fan-out
// barrier) nested anywhere in an expression while locks are held.
func checkBlockingExpr(pass *Pass, e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // not executed here
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "ProcessBatch" {
			return true
		}
		if recv, found := pass.TypesInfo().Selections[sel]; found &&
			namedType(recv.Recv(), pipelinePath, "Switch") {
			pass.Reportf(call.Pos(), "ProcessBatch fan-out while holding %s", heldList(held))
		}
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// heldList renders the held lock set deterministically.
func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	if len(keys) > 1 {
		// Small fixed sort keeps diagnostics stable.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	out := keys[0]
	for _, k := range keys[1:] {
		out += ", " + k
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// compilerPath is the package whose outputs the fit gate tracks.
const compilerPath = "camus/internal/compiler"

// FitGateAnalyzer enforces the control plane's admission discipline:
// inside ctlplane packages, a program freshly produced by
// compiler.Compile (or an Incremental.Apply update) must not flow into
// an Install call unless the same function also runs a fit-admission
// check (a Model.Admit / Service.admit call). Installing an unchecked
// compile is exactly the bug WithAdmission exists to prevent — the
// table entries land on the switch before anyone asked whether the
// pipeline can hold them, and the overflow is discovered by the
// hardware instead of the fit model. The live service stays clean by
// construction: Subscribe admits the predicted delta before any
// registry mutation, so by the time a worker compiles and installs, the
// entries were already accounted for — Install sites there receive the
// program as a parameter, not from a same-function compile.
//
// The analysis is intra-procedural and syntactic in the same spirit as
// camus-locksend: values assigned from a taint source are tracked
// through direct assignments and field selections within one function
// body (closures are scanned separately and do not inherit taint), and
// an Admit/admit call anywhere in the function discharges the
// obligation.
var FitGateAnalyzer = &Analyzer{
	Name: "camus-fitgate",
	Doc:  "flag freshly compiled programs reaching Install without a fit-admission check in ctlplane paths",
	Run:  runFitGate,
}

func runFitGate(pass *Pass) {
	path := pass.PkgPath()
	if !strings.Contains(path, "/ctlplane") && !strings.HasSuffix(path, "/fitgate") {
		return
	}
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFitGate(pass, fn.Body)
				}
			case *ast.FuncLit:
				// A closure is its own gate scope: taint does not flow in
				// through captured variables (the capture site is the
				// caller's obligation), and an Admit inside the closure
				// does not discharge the caller's.
				checkFitGate(pass, fn.Body)
			}
			return true
		})
	}
}

// checkFitGate scans one function body: collects program values tainted
// by compiler.Compile / Incremental.Apply, notes whether any admission
// check runs, and reports Install calls fed a tainted value when none
// does.
func checkFitGate(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()
	tainted := make(map[types.Object]bool)
	admitted := false
	var installs []*ast.CallExpr

	inBody := func(n ast.Node, visit func(ast.Node) bool) {
		first := true
		ast.Inspect(n, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit && !first {
				return false // nested closures are scanned separately
			}
			first = false
			return visit(m)
		})
	}

	inBody(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// x, err := compiler.Compile(...) / up, err := inc.Apply(...)
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && fitTaintSource(info, call) {
					taintIdent(info, tainted, s.Lhs[0])
					return true
				}
			}
			// prog := up.Program (and other direct propagation)
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) && rootTainted(info, tainted, rhs) {
					taintIdent(info, tainted, s.Lhs[i])
				}
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Admit", "admit":
					admitted = true
				case "Install":
					installs = append(installs, s)
				}
			}
		}
		return true
	})

	if admitted {
		return
	}
	for _, call := range installs {
		for _, arg := range call.Args {
			if rootTainted(info, tainted, arg) {
				pass.Reportf(call.Pos(),
					"freshly compiled program %s reaches Install without a fit-admission check (run Model.Admit first)",
					exprString(arg))
				break
			}
		}
	}
}

// fitTaintSource recognizes the two compile entry points whose results
// must be admitted before install: the package function
// compiler.Compile* and the (*compiler.Incremental).Apply method.
func fitTaintSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, found := info.Selections[sel]; found {
		return sel.Sel.Name == "Apply" && namedType(s.Recv(), compilerPath, "Incremental")
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return strings.HasPrefix(fn.Name(), "Compile") &&
			fn.Pkg() != nil && fn.Pkg().Path() == compilerPath
	}
	return false
}

// taintIdent marks the object behind one assignment target.
func taintIdent(info *types.Info, tainted map[types.Object]bool, e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			tainted[obj] = true
		}
	}
}

// rootTainted reports whether e is a tainted identifier or a selection
// rooted at one (up.Program is tainted when up is).
func rootTainted(info *types.Info, tainted map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			return obj != nil && tainted[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

package netcheck_test

import (
	"testing"

	"camus/internal/analysis/corrupt"
	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/analysis/replay"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/routing/cover"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// coverDeploy is corpusDeploy with the covering reduction applied
// between routing and compilation: the subsumption forest's batch
// equivalent (cover.ReduceResult) elides every port entry implied by a
// broader filter on the same port, then the mutations corrupt the
// *reduced* tables — the state a buggy uncover/promote pass would leave
// behind. (cover stays out of netcheck's non-test dependencies; this
// external package only builds fixtures with it.)
func coverDeploy(t testing.TB, net *topology.Network, subs [][]subscription.Expr,
	ropts routing.Options, muts []corrupt.NetMutation) (*controller.Deployment, []*prove.Program, cover.ReduceStats) {
	t.Helper()
	res, err := routing.ComputeFatTree(net, subs, ropts)
	if err != nil {
		t.Fatalf("ComputeFatTree: %v", err)
	}
	st := cover.ReduceResult(cover.NewImplier(corpusSpec, 0), res)
	for i, m := range muts {
		if err := m.ApplyNet(res); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	static, err := compiler.GenerateStatic(corpusSpec, compiler.StaticOptions{})
	if err != nil {
		t.Fatalf("GenerateStatic: %v", err)
	}
	d := &controller.Deployment{
		Network: net, Spec: corpusSpec, Routing: res, Static: static,
		Programs: make([]*compiler.Program, len(net.Switches)),
	}
	irs := make([]*prove.Program, len(net.Switches))
	for _, s := range net.Switches {
		copts := compiler.Options{}
		ports := s.Ports
		copts.LastHopPort = func(port int) bool {
			return port >= 0 && port < len(ports) && ports[port].Kind == topology.PeerHost
		}
		prog, err := compiler.Compile(corpusSpec, res.RulesForSwitch(s.ID), copts)
		if err != nil {
			t.Fatalf("Compile(%s): %v", s.Name, err)
		}
		d.Programs[s.ID] = prog
		if irs[s.ID], err = prog.ProveIR(); err != nil {
			t.Fatalf("ProveIR(%s): %v", s.Name, err)
		}
	}
	return d, irs, st
}

// TestCoveringSeededCorpus is the known-bad corpus for the covering
// machinery: each seeded defect of the uncover/promote pass — a lost
// promotion, a stale parent entry, an over-widened root — must be
// reported by netcheck with the golden finding kind and a
// cold-replayable counterexample that reproduces on the simulated
// dataplane built from the corrupted covering tables.
func TestCoveringSeededCorpus(t *testing.T) {
	net := topology.MustFatTree(4)
	broad := "stock == GOOGL"
	narrow := "stock == GOOGL and price > 500"

	tor2, port2 := net.Access(2)
	cases := []struct {
		name string
		subs func() [][]subscription.Expr
		// truth maps host → subscribed filter sources (the ground truth
		// handed to the checker, independent of what the tables hold).
		muts []corrupt.NetMutation
		want string
	}{
		{
			// Host 2 holds broad ⊒ narrow; the reduction leaves only the
			// broad root installed. Losing that root network-wide without
			// promoting the covered child black-holes both subscriptions.
			name: "dropped-uncover",
			subs: func() [][]subscription.Expr {
				subs := make([][]subscription.Expr, len(net.Hosts))
				subs[2] = []subscription.Expr{corpusFilter(t, broad), corpusFilter(t, narrow)}
				subs[5] = []subscription.Expr{corpusFilter(t, "price > 500")}
				return subs
			},
			muts: []corrupt.NetMutation{{Op: "dropped-uncover", FilterID: 0}},
			want: netcheck.KindBlackHole,
		},
		{
			// Host 2 subscribes only the narrow refinement, but a stale
			// refcount kept the already-unsubscribed broad parent at its
			// access port instead of the promoted child: GOOGL packets
			// with price ≤ 500 arrive spuriously (ingress on the same ToR
			// reaches the corrupted port without transit help).
			name: "stale-cover",
			subs: func() [][]subscription.Expr {
				subs := make([][]subscription.Expr, len(net.Hosts))
				subs[2] = []subscription.Expr{corpusFilter(t, narrow)}
				subs[5] = []subscription.Expr{corpusFilter(t, "price > 500")}
				return subs
			},
			muts: []corrupt.NetMutation{{
				Op: "stale-cover", Switch: tor2, Port: port2, FilterID: 0,
				Filter: &routing.Filter{
					ID: 90, Host: 2,
					Expr:   corpusFilter(t, broad),
					Approx: corpusFilter(t, broad),
				},
			}},
			want: netcheck.KindSpurious,
		},
		{
			// An implication oracle that wrongly widens the installed root
			// to the broad form network-wide over-delivers: the tables
			// forward GOOGL traffic the narrow subscription never asked for.
			name: "over-broad-cover",
			subs: func() [][]subscription.Expr {
				subs := make([][]subscription.Expr, len(net.Hosts))
				subs[2] = []subscription.Expr{corpusFilter(t, narrow)}
				subs[5] = []subscription.Expr{corpusFilter(t, "price > 500")}
				return subs
			},
			muts: []corrupt.NetMutation{{
				Op: "over-broad-cover", FilterID: 0, Expr: corpusFilter(t, broad),
			}},
			want: netcheck.KindSpurious,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			subs := tc.subs()
			var truth []netcheck.Subscription
			id := 0
			for h, exprs := range subs {
				for _, e := range exprs {
					truth = append(truth, netcheck.Subscription{ID: id, Host: h, Expr: e})
					id++
				}
			}
			d, irs, _ := coverDeploy(t, net, subs, routing.Options{}, tc.muts)
			res, err := netcheck.CheckFatTree(net, corpusSpec, irs, truth, netcheck.Options{})
			if err != nil {
				t.Fatalf("CheckFatTree: %v", err)
			}
			var hit *netcheck.Finding
			for i := range res.Findings {
				if res.Findings[i].Kind == tc.want {
					hit = &res.Findings[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s finding; findings: %+v", tc.want, res.Findings)
			}
			if hit.Cex == nil {
				t.Fatal("finding has no counterexample")
			}
			if !hit.Cex.Stateless() {
				t.Fatalf("witness needs register state %v; expected a cold-replayable packet", hit.Cex.State)
			}
			out, err := replay.ConfirmNet(d, truth, hit.Cex, hit.Ingress, 0)
			if err != nil {
				t.Fatalf("ConfirmNet: %v", err)
			}
			if !out.Confirmed {
				t.Fatalf("witness did not reproduce on the dataplane: want %v, runs %v", out.Want, out.Runs)
			}
		})
	}
}

// TestCoveringCleanBaseline is the certification half: the covering
// reduction must actually elide entries on a covering-heavy
// subscription set, and the reduced fat-tree deployment must pass the
// full network certificate against the complete ground truth — the
// same delivery cuts as the unreduced tables, which
// TestCorpusCleanBaseline certifies with the identical harness.
func TestCoveringCleanBaseline(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[2] = []subscription.Expr{
		corpusFilter(t, "stock == GOOGL"),
		corpusFilter(t, "stock == GOOGL and price > 500"),
		corpusFilter(t, "stock == GOOGL and price > 500 and shares > 100"),
	}
	subs[5] = []subscription.Expr{
		corpusFilter(t, "price > 500"),
		corpusFilter(t, "price > 800"),
	}
	subs[9] = []subscription.Expr{corpusFilter(t, "stock == MSFT or stock == AAPL")}
	var truth []netcheck.Subscription
	id := 0
	for h, exprs := range subs {
		for _, e := range exprs {
			truth = append(truth, netcheck.Subscription{ID: id, Host: h, Expr: e})
			id++
		}
	}
	_, irs, st := coverDeploy(t, net, subs, routing.Options{}, nil)
	if st.Removed() == 0 {
		t.Fatalf("covering reduction elided nothing: %+v", st)
	}
	res, err := netcheck.CheckFatTree(net, corpusSpec, irs, truth, netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckFatTree: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("covering-reduced deployment flagged: %+v", res.Findings)
	}
	t.Logf("covering clean baseline: %d → %d entries certified", st.Before, st.After)
}

// TestCoveringTreeCorpus runs the same certification and the
// dropped-uncover defect on a general topology: the path 0—1—2 with a
// nested pair at node 2 reduces to the broad root alone, certifies
// clean, and loses delivery entirely when the root vanishes without
// promotion.
func TestCoveringTreeCorpus(t *testing.T) {
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	mst, err := topology.PrimMST(g, 0, topology.UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[int][]subscription.Expr{2: {
		corpusFilter(t, "stock == GOOGL"),
		corpusFilter(t, "stock == GOOGL and price > 500"),
	}}
	build := func(muts []corrupt.NetMutation) (*routing.TreeResult, []*prove.Program, cover.ReduceStats) {
		tr, err := routing.ComputeTree(mst, subs, 0)
		if err != nil {
			t.Fatal(err)
		}
		st := cover.ReduceTree(cover.NewImplier(corpusSpec, 0), tr)
		for i, m := range muts {
			if err := m.ApplyTree(tr); err != nil {
				t.Fatalf("mutation %d: %v", i, err)
			}
		}
		progs := make([]*prove.Program, g.N)
		for v := 0; v < g.N; v++ {
			prog, err := compiler.Compile(corpusSpec, tr.RulesForNode(v), compiler.Options{})
			if err != nil {
				t.Fatalf("Compile(%d): %v", v, err)
			}
			if progs[v], err = prog.ProveIR(); err != nil {
				t.Fatalf("ProveIR(%d): %v", v, err)
			}
		}
		return tr, progs, st
	}

	tr, progs, st := build(nil)
	if st.Removed() == 0 {
		t.Fatalf("tree covering reduction elided nothing: %+v", st)
	}
	res, err := netcheck.CheckTree(tr, corpusSpec, progs, netcheck.TreeSubscriptions(tr), netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("clean reduced tree flagged: %+v", res.Findings)
	}

	tr, progs, _ = build([]corrupt.NetMutation{{Op: "dropped-uncover", FilterID: 0}})
	res, err = netcheck.CheckTree(tr, corpusSpec, progs, netcheck.TreeSubscriptions(tr), netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	hit := false
	for _, f := range res.Findings {
		if f.Kind == netcheck.KindBlackHole && f.Host == 2 && f.Cex != nil {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no black-hole finding for node 2; findings: %+v", res.Findings)
	}
}

package netcheck_test

import (
	"fmt"
	"math/rand"
	"testing"

	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

var itchSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func filter(t testing.TB, src string) subscription.Expr {
	t.Helper()
	e, err := subscription.NewParser(itchSpec).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

// proveAll converts a deployment's compiled programs to the prover IR.
func proveAll(t testing.TB, progs []*compiler.Program) []*prove.Program {
	t.Helper()
	out := make([]*prove.Program, len(progs))
	for i, p := range progs {
		if p == nil {
			continue
		}
		ir, err := p.ProveIR()
		if err != nil {
			t.Fatalf("ProveIR(%d): %v", i, err)
		}
		out[i] = ir
	}
	return out
}

// fatTreeSubs is a representative mixed workload: exact-match, range,
// disjunction, and a stateful aggregate filter.
func fatTreeSubs(t testing.TB, net *topology.Network) ([][]subscription.Expr, []netcheck.Subscription) {
	t.Helper()
	raw := map[int][]string{
		2:  {"stock == GOOGL"},
		5:  {"stock == GOOGL and price > 500"},
		9:  {"stock == MSFT or stock == AAPL"},
		14: {"price > 900 and shares > 500"},
		7:  {"avg(price, 100ms) > 250 and stock == FB"},
	}
	subs := make([][]subscription.Expr, len(net.Hosts))
	var flat []netcheck.Subscription
	id := 0
	for h := 0; h < len(net.Hosts); h++ {
		for _, src := range raw[h] {
			e := filter(t, src)
			subs[h] = append(subs[h], e)
			flat = append(flat, netcheck.Subscription{ID: id, Host: h, Expr: e})
			id++
		}
	}
	return subs, flat
}

func checkFatTreeDeployment(t *testing.T, opts controller.Options) *netcheck.Result {
	t.Helper()
	net := topology.MustFatTree(4)
	subs, flat := fatTreeSubs(t, net)
	d, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	res, err := netcheck.CheckFatTree(net, itchSpec, proveAll(t, d.Programs), flat, netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckFatTree: %v", err)
	}
	return res
}

// TestFatTreeClean certifies the paper's end-to-end claim for the real
// controller pipeline: Algorithm-1 placement plus compiled programs
// deliver exactly, loop-free, under both policies and α settings.
func TestFatTreeClean(t *testing.T) {
	for _, policy := range []routing.Policy{routing.MemoryReduction, routing.TrafficReduction} {
		for _, alpha := range []int64{0, 10} {
			t.Run(fmt.Sprintf("policy=%v/alpha=%d", policy, alpha), func(t *testing.T) {
				res := checkFatTreeDeployment(t, controller.Options{
					Routing: routing.Options{Policy: policy, Alpha: alpha},
				})
				if !res.Ok() {
					for _, f := range res.Findings {
						t.Errorf("finding: %s: %s", f.Kind, f.Message)
					}
				}
				if res.Classes == 0 {
					t.Fatal("no classes propagated")
				}
			})
		}
	}
}

// buildTree computes and compiles an MST++ deployment over a random
// AS-like graph.
func buildTree(t testing.TB, g *topology.Graph, subs map[int][]subscription.Expr, alpha int64) (*routing.TreeResult, []*prove.Program) {
	t.Helper()
	mst, err := topology.PrimMST(g, 0, topology.DegreeProductWeight(g))
	if err != nil {
		t.Fatalf("PrimMST: %v", err)
	}
	tr, err := routing.ComputeTree(mst, subs, alpha)
	if err != nil {
		t.Fatalf("ComputeTree: %v", err)
	}
	progs := make([]*prove.Program, g.N)
	for v := 0; v < g.N; v++ {
		prog, err := compiler.Compile(itchSpec, tr.RulesForNode(v), compiler.Options{})
		if err != nil {
			t.Fatalf("Compile(node %d): %v", v, err)
		}
		progs[v], err = prog.ProveIR()
		if err != nil {
			t.Fatalf("ProveIR(node %d): %v", v, err)
		}
	}
	return tr, progs
}

// TestTreeClean certifies §IV-E routing end-to-end on random general
// topologies, with and without α overshoot.
func TestTreeClean(t *testing.T) {
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	for _, alpha := range []int64{0, 100} {
		t.Run(fmt.Sprintf("alpha=%d", alpha), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				g := workload.ASGraph(workload.ASGraphConfig{Nodes: 30, Edges: 55, Seed: seed})
				r := rand.New(rand.NewSource(seed))
				subs := make(map[int][]subscription.Expr)
				for i := 0; i < 5; i++ {
					node := r.Intn(g.N)
					subs[node] = append(subs[node], filter(t, fmt.Sprintf(
						"stock == %s and price > %d", stocks[r.Intn(len(stocks))], 100+r.Intn(800))))
				}
				tr, progs := buildTree(t, g, subs, alpha)
				res, err := netcheck.CheckTree(tr, itchSpec, progs, netcheck.TreeSubscriptions(tr), netcheck.Options{Alpha: alpha})
				if err != nil {
					t.Fatalf("seed %d: CheckTree: %v", seed, err)
				}
				if !res.Ok() {
					for _, f := range res.Findings {
						t.Errorf("seed %d: finding: %s: %s", seed, f.Kind, f.Message)
					}
				}
			}
		})
	}
}

// TestFatTreeBlackHoleSeeded knocks one host-facing port entry out of a
// compiled deployment and demands netcheck report the black hole with a
// concrete witness.
func TestFatTreeBlackHoleSeeded(t *testing.T) {
	net := topology.MustFatTree(4)
	subs, flat := fatTreeSubs(t, net)
	d, err := controller.Deploy(net, itchSpec, subs, controller.Options{})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	progs := proveAll(t, d.Programs)
	// Victim: host 2's access switch loses its program entirely — the
	// strongest mis-dropped-entry mutation.
	tor, _ := net.Access(2)
	progs[tor] = nil
	res, err := netcheck.CheckFatTree(net, itchSpec, progs, flat, netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckFatTree: %v", err)
	}
	var hit bool
	for _, f := range res.Findings {
		if f.Kind == netcheck.KindBlackHole && f.Host == 2 {
			hit = true
			if f.Cex == nil {
				t.Fatal("black-hole finding has no counterexample")
			}
		}
	}
	if !hit {
		t.Fatalf("no black-hole finding for host 2; findings: %+v", res.Findings)
	}
}

// TestTreeLoopSeeded rewires a leaf's FIB back toward the root's
// direction so a class revisits a node, and demands a loop finding.
func TestTreeLoopSeeded(t *testing.T) {
	// Triangle: nodes 0-1-2 fully connected; MST is a path.
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	subs := map[int][]subscription.Expr{2: {filter(t, "stock == GOOGL")}}
	tr, _ := buildTree(t, g, subs, 0)
	// Corrupt: every node floods all ports — classic routing loop.
	progs := make([]*prove.Program, 3)
	for v := 0; v < 3; v++ {
		fib := tr.FIBs[v]
		// Rewire the tree FIB into the triangle so a cycle exists.
		fib.PortPeer = []int{(v + 1) % 3, (v + 2) % 3}
		var rules []*subscription.Rule
		for p := range fib.PortPeer {
			rules = append(rules, &subscription.Rule{
				ID: p, Filter: filter(t, "stock == GOOGL"), Action: subscription.FwdAction(p),
			})
		}
		prog, err := compiler.Compile(itchSpec, rules, compiler.Options{})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		progs[v], err = prog.ProveIR()
		if err != nil {
			t.Fatalf("ProveIR: %v", err)
		}
	}
	res, err := netcheck.CheckTree(tr, itchSpec, progs, netcheck.TreeSubscriptions(tr), netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	var loop, dup bool
	for _, f := range res.Findings {
		switch f.Kind {
		case netcheck.KindLoop:
			loop = true
		case netcheck.KindDuplicate:
			dup = true // the circulating copy re-arrives at its subscriber
		}
	}
	if !loop {
		t.Fatalf("no loop finding; findings: %+v", res.Findings)
	}
	if !dup {
		t.Fatalf("no duplicate-delivery finding; findings: %+v", res.Findings)
	}
}

// TestReportEnvelope checks the unified report rendering.
func TestReportEnvelope(t *testing.T) {
	r := &netcheck.Result{Findings: []netcheck.Finding{{
		Kind: netcheck.KindBlackHole, FilterID: 3, Host: 2, Ingress: 0,
		Message: "black hole",
		Cex:     &prove.Assignment{Headers: map[string]bool{"itch_order": true}},
	}}}
	rep := r.Report("itch.rules")
	if len(rep.Findings) != 1 || !rep.HasErrors() {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Findings[0].Counterexample == nil {
		t.Fatal("missing counterexample")
	}
}

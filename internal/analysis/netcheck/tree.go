package netcheck

import (
	"fmt"

	"camus/internal/analysis/prove"
	"camus/internal/routing"
	"camus/internal/spec"
)

// CheckTree verifies the network invariants for a general-topology
// spanning-tree deployment (routing.ComputeTree): progs is the
// per-node symbolic IR (from programs compiled over
// TreeResult.RulesForNode) and subs the exact subscription set with
// Host = graph vertex.
//
// Tree nodes are their own access switches, so delivery means "a copy
// arrives at the subscriber node" and the ground truth is the
// stateless filter context (tree programs are compiled without
// last-hop semantics; the subscriber's final stateful evaluation is a
// per-switch property that prove already certifies). The spurious
// invariant takes its tree form: a copy that dies at a node — matching
// none of that node's subscriptions and forwarded nowhere — is
// mis-routed traffic, since α-approximation is deterministic and a
// transit node forwards everything its upstream approximation admits.
func CheckTree(tr *routing.TreeResult, sp *spec.Spec, progs []*prove.Program, subs []Subscription, opts Options) (*Result, error) {
	n := tr.Tree.Graph.N
	if len(progs) != n {
		return nil, fmt.Errorf("netcheck: %d programs for %d nodes", len(progs), n)
	}
	for _, s := range subs {
		if s.Host < 0 || s.Host >= n {
			return nil, fmt.Errorf("netcheck: filter %d: node %d out of range", s.ID, s.Host)
		}
	}
	ck, err := newChecker(sp, subs, opts, false, func(v int) string { return fmt.Sprintf("n%d", v) })
	if err != nil {
		return nil, err
	}
	// A loop-free tree walk visits at most every node once, so n+1 hops
	// is the exact sound bound — only an explicit smaller cap can
	// overflow here.
	if opts.MaxHops == 0 {
		ck.opts.MaxHops = n + 1
	}
	// Dead transit traffic inside a live filter's α-approximation is the
	// deterministic overshoot §IV-D buys; only classes outside every
	// approximation were mis-forwarded.
	for _, s := range subs {
		m, err := prove.NewMatcher(routing.Approximate(s.Expr, ck.opts.Alpha), false)
		if err != nil {
			return nil, fmt.Errorf("netcheck: filter %d approximation: %w", s.ID, err)
		}
		ck.tolerate = append(ck.tolerate, m)
	}
	noNS := func(int) string { return "" }

	publishers := ck.opts.Publishers
	if len(publishers) == 0 {
		publishers = make([]int, n)
		for i := range publishers {
			publishers[i] = i
		}
	}
	for _, pub := range publishers {
		if pub < 0 || pub >= n {
			return nil, fmt.Errorf("netcheck: publisher %d out of range", pub)
		}
		arrivals, dead := ck.propagateTree(tr, progs, pub)
		ck.checkBlackHoles(pub, arrivals, noNS)
		ck.checkSpurious(pub, dead, noNS)
		ck.checkDuplicates(pub, arrivals, noNS)
	}
	return ck.res, nil
}

// TreeSubscriptions derives the exact subscription set from a computed
// tree policy.
func TreeSubscriptions(tr *routing.TreeResult) []Subscription {
	subs := make([]Subscription, 0, len(tr.Filters))
	for _, f := range tr.Filters {
		subs = append(subs, Subscription{ID: f.ID, Host: f.Host, Expr: f.Expr})
	}
	return subs
}

type treeInst struct {
	node int
	in   int // local port arrived on (-1 at the origin)
	cls  *prove.Class
	path []int
}

// propagateTree pushes the unconstrained class from the publishing
// node through the tree FIBs, returning per-node arrivals and the
// dead classes (arrived, matched no forwarding port).
func (ck *checker) propagateTree(tr *routing.TreeResult, progs []*prove.Program, pub int) (arrivals, dead map[int][]delivery) {
	arrivals = make(map[int][]delivery)
	dead = make(map[int][]delivery)
	queue := []treeInst{{node: pub, in: -1, cls: prove.NewClass()}}
	budget := ck.opts.MaxClasses
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ck.res.Classes++
		if budget--; budget < 0 {
			ck.overflow(fmt.Sprintf("class budget (%d) exhausted publishing from node %d", ck.opts.MaxClasses, pub))
			break
		}
		prog := progs[it.node]
		fib := tr.FIBs[it.node]
		if prog == nil || fib == nil {
			if it.node != pub {
				dead[it.node] = append(dead[it.node], delivery{cls: it.cls, path: append(append([]int(nil), it.path...), it.node)})
			}
			continue
		}
		paths, over := prog.Explore(it.cls, ck.opts.MaxPaths)
		if over {
			ck.overflow(fmt.Sprintf("symbolic path budget (%d) exhausted on node %d", ck.opts.MaxPaths, it.node))
		}
		for _, sp := range paths {
			npath := append(append([]int(nil), it.path...), it.node)
			forwarded := false
			for _, q := range sp.Actions.Ports {
				if q == it.in || q < 0 || q >= len(fib.PortPeer) {
					continue // ingress-port drop / invalid port
				}
				forwarded = true
				next := fib.PortPeer[q]
				ncls := sp.Class.Freeze(ns(it.node))
				if ncls == nil {
					continue
				}
				arrivals[next] = append(arrivals[next], delivery{cls: ncls, path: npath})
				if containsInt(npath, next) {
					ck.loopFinding(pub, next, npath, ncls)
					continue
				}
				if len(npath) >= ck.opts.MaxHops {
					ck.overflow(fmt.Sprintf("hop budget (%d) exhausted from node %d without a revisit", ck.opts.MaxHops, pub))
					continue
				}
				in := -1
				nfib := tr.FIBs[next]
				if nfib != nil {
					for p, peer := range nfib.PortPeer {
						if peer == it.node {
							in = p
							break
						}
					}
				}
				queue = append(queue, treeInst{node: next, in: in, cls: ncls, path: npath})
			}
			if !forwarded && it.node != pub {
				dead[it.node] = append(dead[it.node], delivery{cls: sp.Class, path: npath})
			}
		}
	}
	return arrivals, dead
}

package netcheck_test

import (
	"testing"

	"camus/internal/analysis/corrupt"
	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/analysis/replay"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var corpusSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func corpusFilter(t testing.TB, src string) subscription.Expr {
	t.Helper()
	e, err := subscription.NewParser(corpusSpec).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

// corpusDeploy computes routing, applies the network mutations, and
// compiles every switch exactly like the controller does (last-hop
// stateful semantics on host-facing ports).
func corpusDeploy(t testing.TB, net *topology.Network, subs [][]subscription.Expr,
	ropts routing.Options, muts []corrupt.NetMutation) (*controller.Deployment, []*prove.Program) {
	t.Helper()
	res, err := routing.ComputeFatTree(net, subs, ropts)
	if err != nil {
		t.Fatalf("ComputeFatTree: %v", err)
	}
	for i, m := range muts {
		if err := m.ApplyNet(res); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	static, err := compiler.GenerateStatic(corpusSpec, compiler.StaticOptions{})
	if err != nil {
		t.Fatalf("GenerateStatic: %v", err)
	}
	d := &controller.Deployment{
		Network: net, Spec: corpusSpec, Routing: res, Static: static,
		Programs: make([]*compiler.Program, len(net.Switches)),
	}
	irs := make([]*prove.Program, len(net.Switches))
	for _, s := range net.Switches {
		copts := compiler.Options{}
		copts.LastHop = false
		ports := s.Ports
		copts.LastHopPort = func(port int) bool {
			return port >= 0 && port < len(ports) && ports[port].Kind == topology.PeerHost
		}
		prog, err := compiler.Compile(corpusSpec, res.RulesForSwitch(s.ID), copts)
		if err != nil {
			t.Fatalf("Compile(%s): %v", s.Name, err)
		}
		d.Programs[s.ID] = prog
		if irs[s.ID], err = prog.ProveIR(); err != nil {
			t.Fatalf("ProveIR(%s): %v", s.Name, err)
		}
	}
	return d, irs
}

// TestSeededCorpus is the known-bad placement/routing corpus: every
// seeded controller defect must be reported with the golden finding
// kind, and every stateless counterexample must reproduce on the
// simulated dataplane.
func TestSeededCorpus(t *testing.T) {
	net := topology.MustFatTree(4)
	baseSubs := func() [][]subscription.Expr {
		subs := make([][]subscription.Expr, len(net.Hosts))
		subs[2] = []subscription.Expr{corpusFilter(t, "stock == GOOGL")}
		subs[5] = []subscription.Expr{corpusFilter(t, "price > 500")}
		subs[9] = []subscription.Expr{corpusFilter(t, "stock == MSFT or stock == AAPL")}
		return subs
	}
	groundTruth := func(subs [][]subscription.Expr) []netcheck.Subscription {
		var out []netcheck.Subscription
		id := 0
		for h, exprs := range subs {
			for _, e := range exprs {
				out = append(out, netcheck.Subscription{ID: id, Host: h, Expr: e})
				id++
			}
		}
		return out
	}

	tor2, port2 := net.Access(2)
	cases := []struct {
		name  string
		ropts routing.Options
		muts  []corrupt.NetMutation
		// stale drops this filter ID from the ground truth while the
		// tables keep it installed (refcount leak).
		stale int
		want  string // golden finding kind
	}{
		{
			name: "mis-dropped-port-entry",
			muts: []corrupt.NetMutation{{
				Op: "drop-port-entry", Switch: tor2, Port: port2, FilterID: 0,
			}},
			stale: -1,
			want:  netcheck.KindBlackHole,
		},
		{
			name: "redirected-port-entry",
			muts: []corrupt.NetMutation{{
				// Host 2's filter delivered to host 3's port instead.
				Op: "redirect-port", Switch: tor2, Port: port2, FilterID: 0, ToPort: port2 + 1,
			}},
			stale: -1,
			want:  netcheck.KindBlackHole,
		},
		{
			name:  "stale-refcount-filter",
			muts:  nil,
			stale: 1, // host 5 unsubscribed "price > 500"; tables keep it
			want:  netcheck.KindSpurious,
		},
		{
			name:  "wrong-alpha-cut",
			ropts: routing.Options{Alpha: 100},
			muts: []corrupt.NetMutation{{
				// The transit approximation of "price > 500" narrows to
				// "price > 600": packets with 500 < price ≤ 600 starve.
				Op: "narrow-approx", FilterID: 1, Expr: corpusFilter(t, "price > 600"),
			}},
			stale: -1,
			want:  netcheck.KindBlackHole,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			subs := baseSubs()
			d, irs := corpusDeploy(t, net, subs, tc.ropts, tc.muts)
			truth := groundTruth(subs)
			if tc.stale >= 0 {
				kept := truth[:0:0]
				for _, s := range truth {
					if s.ID != tc.stale {
						kept = append(kept, s)
					}
				}
				truth = kept
			}
			res, err := netcheck.CheckFatTree(net, corpusSpec, irs, truth, netcheck.Options{})
			if err != nil {
				t.Fatalf("CheckFatTree: %v", err)
			}
			var hit *netcheck.Finding
			for i := range res.Findings {
				if res.Findings[i].Kind == tc.want {
					hit = &res.Findings[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s finding; findings: %+v", tc.want, res.Findings)
			}
			if hit.Cex == nil {
				t.Fatal("finding has no counterexample")
			}
			if !hit.Cex.Stateless() {
				t.Fatalf("witness needs register state %v; expected a cold-replayable packet", hit.Cex.State)
			}
			// Replay: the witness must reproduce the violation on the
			// simulated dataplane. Publish from the finding's ingress.
			out, err := replay.ConfirmNet(d, truth, hit.Cex, hit.Ingress, 0)
			if err != nil {
				t.Fatalf("ConfirmNet: %v", err)
			}
			if !out.Confirmed {
				t.Fatalf("witness did not reproduce on the dataplane: want %v, runs %v", out.Want, out.Runs)
			}
		})
	}
}

// TestTreeCorpusSeeded seeds a mis-dropped port entry on a general
// topology: the path 0—1—2 loses filter 0 on node 0's transit port, so
// traffic published at 0 never reaches the subscriber at 2.
func TestTreeCorpusSeeded(t *testing.T) {
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	mst, err := topology.PrimMST(g, 0, topology.UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[int][]subscription.Expr{2: {corpusFilter(t, "stock == GOOGL")}}
	tr, err := routing.ComputeTree(mst, subs, 0)
	if err != nil {
		t.Fatal(err)
	}
	port := -1
	for p, peer := range tr.FIBs[0].PortPeer {
		if peer == 1 {
			port = p
		}
	}
	mut := corrupt.NetMutation{Op: "drop-port-entry", Switch: 0, Port: port, FilterID: 0}
	if err := mut.ApplyTree(tr); err != nil {
		t.Fatalf("ApplyTree: %v", err)
	}
	progs := make([]*prove.Program, g.N)
	for v := 0; v < g.N; v++ {
		prog, err := compiler.Compile(corpusSpec, tr.RulesForNode(v), compiler.Options{})
		if err != nil {
			t.Fatalf("Compile(%d): %v", v, err)
		}
		if progs[v], err = prog.ProveIR(); err != nil {
			t.Fatalf("ProveIR(%d): %v", v, err)
		}
	}
	res, err := netcheck.CheckTree(tr, corpusSpec, progs, netcheck.TreeSubscriptions(tr), netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	var hit bool
	for _, f := range res.Findings {
		if f.Kind == netcheck.KindBlackHole && f.Host == 2 && f.Cex != nil {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no black-hole finding for node 2; findings: %+v", res.Findings)
	}
}

// TestCorpusCleanBaseline cross-checks the seeder harness: with no
// mutation and an honest ground truth, the same pipeline certifies
// clean and replay agrees everywhere.
func TestCorpusCleanBaseline(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[2] = []subscription.Expr{corpusFilter(t, "stock == GOOGL")}
	subs[5] = []subscription.Expr{corpusFilter(t, "price > 500")}
	d, irs := corpusDeploy(t, net, subs, routing.Options{}, nil)
	truth := []netcheck.Subscription{
		{ID: 0, Host: 2, Expr: subs[2][0]},
		{ID: 1, Host: 5, Expr: subs[5][0]},
	}
	res, err := netcheck.CheckFatTree(net, corpusSpec, irs, truth, netcheck.Options{})
	if err != nil {
		t.Fatalf("CheckFatTree: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("clean deployment flagged: %+v", res.Findings)
	}
	// A packet matching filter 0 must replay cleanly too.
	m, err := prove.NewMatcher(truth[0].Expr, true)
	if err != nil {
		t.Fatal(err)
	}
	cls := m.RefineTrue(prove.NewClass())
	if len(cls) == 0 {
		t.Fatal("unsatisfiable filter")
	}
	cex, ok := cls[0].Concretize(corpusSpec, "")
	if !ok {
		t.Fatal("concretize failed")
	}
	out, err := replay.ConfirmNet(d, truth, cex, 0, 0)
	if err != nil {
		t.Fatalf("ConfirmNet: %v", err)
	}
	if out.Confirmed {
		t.Fatalf("clean deployment diverged on replay: want %v, runs %v", out.Want, out.Runs)
	}
}

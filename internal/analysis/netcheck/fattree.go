package netcheck

import (
	"fmt"

	"camus/internal/analysis/prove"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/topology"
)

// CheckFatTree verifies the three network invariants for a fat-tree
// deployment: progs is the per-switch symbolic IR (by switch ID, from
// compiler.Program.ProveIR; nil entries drop everything) and subs the
// exact subscription set, host-indexed. Matching the dataplane, the
// delivery ground truth uses §II last-hop semantics: the obligation for
// a stateful filter covers exactly the packets whose aggregate
// predicate holds on the subscriber's access switch.
func CheckFatTree(net *topology.Network, sp *spec.Spec, progs []*prove.Program, subs []Subscription, opts Options) (*Result, error) {
	if len(progs) != len(net.Switches) {
		return nil, fmt.Errorf("netcheck: %d programs for %d switches", len(progs), len(net.Switches))
	}
	for _, s := range subs {
		if s.Host < 0 || s.Host >= len(net.Hosts) {
			return nil, fmt.Errorf("netcheck: filter %d: host %d out of range", s.ID, s.Host)
		}
	}
	ck, err := newChecker(sp, subs, opts, true, func(sw int) string { return net.Switches[sw].Name })
	if err != nil {
		return nil, err
	}
	deliverNS := func(host int) string {
		sw, _ := net.Access(host)
		return ns(sw)
	}

	publishers := ck.opts.Publishers
	if len(publishers) == 0 {
		publishers = make([]int, len(net.Hosts))
		for i := range publishers {
			publishers[i] = i
		}
	}
	for _, pub := range publishers {
		if pub < 0 || pub >= len(net.Hosts) {
			return nil, fmt.Errorf("netcheck: publisher %d out of range", pub)
		}
		tor, _ := net.Access(pub)
		// The invariants must hold under every up-path resolution: the
		// single climbing copy picks one uplink at its ToR and one at
		// the chosen agg (RR/ECMP); copies arriving from above never
		// climb again, so these are the only nondeterministic choices.
		for _, resolution := range upResolutions(net, tor) {
			deliveries := ck.propagateFat(net, progs, pub, resolution)
			ck.checkBlackHoles(pub, deliveries, deliverNS)
			ck.checkSpurious(pub, deliveries, deliverNS)
			ck.checkDuplicates(pub, deliveries, deliverNS)
		}
	}
	return ck.res, nil
}

// upResolutions enumerates the up-path choices reachable from one
// ingress ToR: (uplink at the ToR) × (uplink at that agg). A topology
// with no uplinks has the single empty resolution.
func upResolutions(net *topology.Network, tor int) []map[int]int {
	ups := net.Switches[tor].UpPorts()
	if len(ups) == 0 {
		return []map[int]int{{}}
	}
	var out []map[int]int
	for _, up := range ups {
		agg := up.PeerSwitch
		aggUps := net.Switches[agg].UpPorts()
		if len(aggUps) == 0 {
			out = append(out, map[int]int{tor: up.Index})
			continue
		}
		for _, aup := range aggUps {
			out = append(out, map[int]int{tor: up.Index, agg: aup.Index})
		}
	}
	return out
}

// fatInst is one symbolic copy in flight.
type fatInst struct {
	sw     int
	in     int // arrival port (the publisher's access port at the ingress ToR)
	fromUp bool
	cls    *prove.Class
	path   []int // switches already visited (not including sw)
}

// propagateFat pushes the unconstrained ingress class from pub's
// access port through the network under one up-path resolution,
// returning the symbolic deliveries per host.
func (ck *checker) propagateFat(net *topology.Network, progs []*prove.Program, pub int, resolution map[int]int) map[int][]delivery {
	deliveries := make(map[int][]delivery)
	tor, accessPort := net.Access(pub)
	queue := []fatInst{{sw: tor, in: accessPort, cls: prove.NewClass()}}
	budget := ck.opts.MaxClasses
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ck.res.Classes++
		if budget--; budget < 0 {
			ck.overflow(fmt.Sprintf("class budget (%d) exhausted publishing from host %d", ck.opts.MaxClasses, pub))
			break
		}
		prog := progs[it.sw]
		if prog == nil {
			continue
		}
		paths, over := prog.Explore(it.cls, ck.opts.MaxPaths)
		if over {
			ck.overflow(fmt.Sprintf("symbolic path budget (%d) exhausted on %s", ck.opts.MaxPaths, ck.swName(it.sw)))
		}
		sw := net.Switches[it.sw]
		for _, sp := range paths {
			for _, q := range sp.Actions.Ports {
				phys := q
				if q == routing.UpPort {
					// A copy that arrived from above never climbs again
					// (netsim resolvePort); otherwise the resolution
					// pins the single physical uplink.
					if it.fromUp {
						continue
					}
					var ok bool
					if phys, ok = resolution[it.sw]; !ok {
						if ups := sw.UpPorts(); len(ups) > 0 {
							phys = ups[0].Index
						} else {
							continue
						}
					}
				} else if q == it.in {
					continue // pipeline's ingress-port drop
				}
				if phys < 0 || phys >= len(sw.Ports) {
					continue
				}
				port := sw.Ports[phys]
				switch port.Kind {
				case topology.PeerHost:
					deliveries[port.PeerHostID] = append(deliveries[port.PeerHostID], delivery{
						cls:  sp.Class,
						path: append(append([]int(nil), it.path...), it.sw),
					})
				default:
					next := port.PeerSwitch
					ncls := sp.Class.Freeze(ns(it.sw))
					if ncls == nil {
						continue
					}
					npath := append(append([]int(nil), it.path...), it.sw)
					if containsInt(npath, next) {
						ck.loopFinding(pub, next, npath, ncls)
						continue
					}
					if len(npath) >= ck.opts.MaxHops {
						ck.overflow(fmt.Sprintf("hop budget (%d) exhausted from host %d without a revisit", ck.opts.MaxHops, pub))
						continue
					}
					inKind := net.Switches[next].Ports[port.PeerPort].Kind
					queue = append(queue, fatInst{
						sw: next, in: port.PeerPort, fromUp: inKind == topology.PeerUp,
						cls: ncls, path: npath,
					})
				}
			}
		}
	}
	return deliveries
}

package netcheck_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestNoCompilerDependency is the depguard for the verifier's
// independence claim: netcheck must reason about deployments purely
// through the prover's symbolic semantics, never through the BDD
// engine, the compiler, or its match-constraint vocabulary — a bug
// shared between the compiler and the checker would otherwise certify
// itself. (This external test package does depend on the compiler to
// build fixtures; `go list -deps` excludes test dependencies.)
func TestNoCompilerDependency(t *testing.T) {
	out, err := exec.Command("go", "list", "-deps", "camus/internal/analysis/netcheck").CombinedOutput()
	if err != nil {
		t.Fatalf("go list -deps: %v\n%s", err, out)
	}
	deps := strings.Fields(string(out))
	forbidden := map[string]string{
		"camus/internal/bdd":      "the engine under validation",
		"camus/internal/match":    "the compiler's constraint vocabulary",
		"camus/internal/compiler": "the translation under validation",
	}
	for _, d := range deps {
		if why, bad := forbidden[d]; bad {
			t.Errorf("netcheck depends on %s (%s) — independence broken", d, why)
		}
	}
}

// Package netcheck is the network-wide symbolic delivery verifier: it
// propagates packet classes hop-by-hop through every switch's compiled
// program (via the prover's independent cube semantics — no BDDs, no
// compiler matching code) from every ingress and certifies the paper's
// end-to-end claim for a concrete deployment:
//
//  1. no black holes — every packet matching a subscription reaches
//     all of its subscribers, under every up-path (ECMP/RR)
//     resolution;
//  2. no loops — no satisfiable packet class revisits a switch
//     (cycle detection on the class×switch graph);
//  3. exact delivery — a host receives only packets matching its own
//     subscriptions (evaluated with §II last-hop semantics), and never
//     the same class twice via distinct paths.
//
// The model mirrors the dataplane: a logical up-port (routing.UpPort)
// resolves to exactly one physical uplink per packet, so the checker
// enumerates all resolutions and demands the invariants under each; a
// packet is never forwarded back out its ingress port
// (pipeline.Config.DropOnIngressPort, on by default) nor up again once
// it arrived from above (netsim's fromUp suppression). Aggregate
// registers are per-switch state: a class crossing a link freezes its
// register constraints under the source switch's namespace (see
// prove.Class.Freeze), keeping register-conditional forwarding bugs
// distinguishable without conflating different switches' registers.
//
// Violations are reported as Findings with concrete counterexample
// packets; witnesses prefer all-zero registers so they replay on a
// cold dataplane (internal/analysis/replay.ConfirmNet).
package netcheck

import (
	"fmt"
	"sort"

	"camus/internal/analysis/prove"
	"camus/internal/analysis/report"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Finding kinds.
const (
	KindBlackHole = "black-hole"         // subscribed class never delivered
	KindLoop      = "loop"               // class revisits a switch
	KindSpurious  = "spurious-delivery"  // delivered class matches no subscription
	KindDuplicate = "duplicate-delivery" // class delivered twice via distinct paths
	KindOverflow  = "analysis-overflow"  // symbolic budget exhausted; verdict partial
)

// Subscription is one host's (or, on general topologies, node's) filter
// as the network-wide ground truth sees it: the exact expression, not
// the α-approximation.
type Subscription struct {
	ID   int
	Host int
	Expr subscription.Expr
}

// Options bound the symbolic exploration.
type Options struct {
	// MaxPaths bounds each per-switch symbolic execution (default
	// 20000).
	MaxPaths int
	// MaxClasses bounds the total number of class instances propagated
	// per (ingress, resolution) run (default 50000).
	MaxClasses int
	// MaxContexts bounds cube fan-out in the per-host delivery checks
	// (default 4096).
	MaxContexts int
	// MaxHops caps a copy's path length before it is reported as a
	// loop (default 16, netsim's HopLimit).
	MaxHops int
	// Publishers, when non-empty, restricts the verified ingress set
	// (default: every host / every node). The certificate then covers
	// only those publishers.
	Publishers []int
	// Alpha is the α-discretization the deployment was routed with
	// (tree mode only). Transit traffic inside the approximation of a
	// live subscription may legitimately die at the hop where the exact
	// filter takes over, so the spurious check tolerates it; everything
	// else that dies mid-tree is mis-routed. Zero means no
	// approximation (exact filters everywhere).
	Alpha int64
}

func (o Options) withDefaults() Options {
	if o.MaxPaths == 0 {
		o.MaxPaths = 20000
	}
	if o.MaxClasses == 0 {
		o.MaxClasses = 50000
	}
	if o.MaxContexts == 0 {
		o.MaxContexts = 4096
	}
	if o.MaxHops == 0 {
		o.MaxHops = 16
	}
	return o
}

// Finding is one network invariant violation with its witness.
type Finding struct {
	// Kind is one of the Kind* constants.
	Kind string
	// FilterID is the subscription the finding is about (-1 when none).
	FilterID int
	// Host is the affected subscriber host/node (-1 for loops).
	Host int
	// Ingress is the publishing host/node the violation was found from.
	Ingress int
	// Switch names the switch where the violation manifests (the
	// revisited switch for loops, the delivering switch otherwise).
	Switch string
	// Path is the witness copy's switch path, ingress first.
	Path []string
	// Message is the human-readable statement.
	Message string
	// Cex is the concrete witness packet (nil for overflow findings).
	// Register witnesses, if any, use switch-qualified keys
	// ("s<id>|<aggkey>").
	Cex *prove.Assignment
}

// Result is one netcheck run.
type Result struct {
	Findings []Finding
	// Classes counts propagated class instances across all runs.
	Classes int
	// Overflowed reports that some symbolic budget was exhausted — the
	// verdict is then partial even with zero findings.
	Overflowed bool
}

// Ok reports a clean, complete certificate.
func (r *Result) Ok() bool { return len(r.Findings) == 0 && !r.Overflowed }

// Report renders the result into the unified envelope (tool
// "camusc-netcheck"). Callers that replay witnesses fill
// Counterexample.Packet and Confirmed.
func (r *Result) Report(file string) *report.Report {
	rep := &report.Report{Tool: "camusc-netcheck", File: file}
	for _, f := range r.Findings {
		rf := report.Finding{
			Tool: "camusc-netcheck", File: file, RuleID: f.FilterID,
			Kind: report.Kind(f.Kind), Severity: report.SevError,
			Message: f.Message,
		}
		if f.Kind == KindOverflow {
			rf.Severity = report.SevWarning
		}
		if f.Cex != nil {
			cex := &report.Counterexample{}
			for h, p := range f.Cex.Headers {
				if p {
					cex.Headers = append(cex.Headers, h)
				}
			}
			sort.Strings(cex.Headers)
			if len(f.Cex.Fields) > 0 {
				cex.Fields = make(map[string]string, len(f.Cex.Fields))
				for q, v := range f.Cex.Fields {
					cex.Fields[q] = v.String()
				}
			}
			if len(f.Cex.State) > 0 {
				cex.State = make(map[string]int64, len(f.Cex.State))
				for k, v := range f.Cex.State {
					cex.State[k] = v
				}
			}
			rf.Counterexample = cex
		}
		rep.Findings = append(rep.Findings, rf)
	}
	return rep
}

// delivery is one symbolic copy handed to a host (fat tree) or
// arriving at a subscriber node (general topology).
type delivery struct {
	cls  *prove.Class
	path []int
}

// checker carries one CheckFatTree/CheckTree invocation.
type checker struct {
	sp       *spec.Spec
	opts     Options
	subs     []Subscription
	matchers []*prove.Matcher // by subs index
	byHost   map[int][]int    // host → subs indices
	swName   func(int) string
	// tolerate, when non-empty (tree mode), holds the α-approximations
	// of every live subscription: dead transit classes inside one of
	// them are legitimate overshoot, not spurious traffic.
	tolerate []*prove.Matcher

	res  *Result
	seen map[string]bool
}

func newChecker(sp *spec.Spec, subs []Subscription, opts Options, lastHop bool, swName func(int) string) (*checker, error) {
	ck := &checker{
		sp: sp, opts: opts.withDefaults(), subs: subs, swName: swName,
		byHost: make(map[int][]int),
		res:    &Result{},
		seen:   make(map[string]bool),
	}
	for i, s := range subs {
		m, err := prove.NewMatcher(s.Expr, lastHop)
		if err != nil {
			return nil, fmt.Errorf("netcheck: filter %d: %w", s.ID, err)
		}
		ck.matchers = append(ck.matchers, m)
		ck.byHost[s.Host] = append(ck.byHost[s.Host], i)
	}
	return ck, nil
}

// add records a finding once per dedup key (violations are typically
// rediscovered from many ingresses; one witness per (kind, filter,
// host) is the useful report).
func (ck *checker) add(key string, f Finding) {
	if ck.seen[key] {
		return
	}
	ck.seen[key] = true
	ck.res.Findings = append(ck.res.Findings, f)
}

func (ck *checker) overflow(msg string) {
	ck.res.Overflowed = true
	ck.add("overflow|"+msg, Finding{
		Kind: KindOverflow, FilterID: -1, Host: -1, Ingress: -1,
		Message: msg,
	})
}

func (ck *checker) names(path []int) []string {
	out := make([]string, len(path))
	for i, s := range path {
		out[i] = ck.swName(s)
	}
	return out
}

// ns is the register namespace of a switch (prove.Class.Freeze keys).
func ns(sw int) string { return fmt.Sprintf("s%d", sw) }

// checkBlackHoles verifies invariant (1) for one (ingress, resolution)
// run: for every subscription on another host, the obligation class
// (everything matching the exact filter, under last-hop semantics for
// fat trees) minus the union of delivered classes must be empty.
// deliverNS maps a subscriber host to the register namespace its
// deliveries were recorded under (its access switch).
func (ck *checker) checkBlackHoles(ingress int, deliveries map[int][]delivery, deliverNS func(host int) string) {
	for si, sub := range ck.subs {
		if sub.Host == ingress {
			continue // the publisher never receives its own packet (ingress drop)
		}
		key := fmt.Sprintf("%s|%d|%d", KindBlackHole, sub.ID, sub.Host)
		if ck.seen[key] {
			continue
		}
		for _, obligation := range ck.matchers[si].RefineTrue(prove.NewClass()) {
			residual := []*prove.Class{obligation}
			for _, d := range deliveries[sub.Host] {
				var next []*prove.Class
				for _, r := range residual {
					next = append(next, r.Minus(d.cls, ck.sp)...)
				}
				residual = next
				if len(residual) > ck.opts.MaxContexts {
					ck.overflow(fmt.Sprintf("black-hole residual for filter %d exceeded %d cubes", sub.ID, ck.opts.MaxContexts))
					residual = nil
					break
				}
				if len(residual) == 0 {
					break
				}
			}
			found := false
			for _, r := range residual {
				a, ok := r.Concretize(ck.sp, deliverNS(sub.Host))
				if !ok {
					continue
				}
				ck.add(key, Finding{
					Kind: KindBlackHole, FilterID: sub.ID, Host: sub.Host, Ingress: ingress,
					Switch: deliverNS(sub.Host), Cex: a,
					Message: fmt.Sprintf("black hole: packet matching filter %d of host %d published from host %d is never delivered",
						sub.ID, sub.Host, ingress),
				})
				found = true
				break
			}
			if found {
				break
			}
		}
	}
}

// checkSpurious verifies the first half of invariant (3): every class
// in deliveries must match at least one of the receiving host's
// subscriptions.
func (ck *checker) checkSpurious(ingress int, deliveries map[int][]delivery, deliverNS func(host int) string) {
	hosts := make([]int, 0, len(deliveries))
	for h := range deliveries {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	for _, h := range hosts {
		key := fmt.Sprintf("%s|%d", KindSpurious, h)
		if ck.seen[key] {
			continue
		}
		for _, d := range deliveries[h] {
			residual := []*prove.Class{d.cls}
			conclusive := true
			negate := make([]*prove.Matcher, 0, len(ck.byHost[h])+len(ck.tolerate))
			for _, si := range ck.byHost[h] {
				negate = append(negate, ck.matchers[si])
			}
			negate = append(negate, ck.tolerate...)
			for _, m := range negate {
				var next []*prove.Class
				for _, r := range residual {
					nr, ok := m.RefineFalse(r, ck.opts.MaxContexts)
					if !ok {
						conclusive = false
						break
					}
					next = append(next, nr...)
				}
				if !conclusive || len(next) > ck.opts.MaxContexts {
					ck.overflow(fmt.Sprintf("spurious-delivery refinement for host %d exceeded %d cubes", h, ck.opts.MaxContexts))
					conclusive = false
					break
				}
				residual = next
				if len(residual) == 0 {
					break
				}
			}
			if !conclusive {
				continue
			}
			for _, r := range residual {
				a, ok := r.Concretize(ck.sp, deliverNS(h))
				if !ok {
					continue
				}
				ck.add(key, Finding{
					Kind: KindSpurious, FilterID: -1, Host: h, Ingress: ingress,
					Switch: deliverNS(h), Path: ck.names(d.path), Cex: a,
					Message: fmt.Sprintf("spurious delivery: host %d receives a packet (published from host %d, via %v) matching none of its %d subscriptions",
						h, ingress, ck.names(d.path), len(ck.byHost[h])),
				})
				break
			}
			if ck.seen[key] {
				break
			}
		}
	}
}

// checkDuplicates verifies the second half of invariant (3): no two
// distinct copies delivered to one host may share a packet class.
func (ck *checker) checkDuplicates(ingress int, deliveries map[int][]delivery, deliverNS func(host int) string) {
	hosts := make([]int, 0, len(deliveries))
	for h := range deliveries {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	for _, h := range hosts {
		key := fmt.Sprintf("%s|%d", KindDuplicate, h)
		if ck.seen[key] {
			continue
		}
		ds := deliveries[h]
		for i := 0; i < len(ds) && !ck.seen[key]; i++ {
			for j := i + 1; j < len(ds); j++ {
				both := ds[i].cls.Intersect(ds[j].cls, ck.sp)
				if both == nil {
					continue
				}
				a, ok := both.Concretize(ck.sp, deliverNS(h))
				if !ok {
					continue
				}
				ck.add(key, Finding{
					Kind: KindDuplicate, FilterID: -1, Host: h, Ingress: ingress,
					Switch: deliverNS(h), Path: ck.names(ds[j].path), Cex: a,
					Message: fmt.Sprintf("duplicate delivery: host %d receives the same packet twice (published from host %d, via %v and %v)",
						h, ingress, ck.names(ds[i].path), ck.names(ds[j].path)),
				})
				break
			}
		}
	}
}

// loopFinding records a class about to revisit a switch.
func (ck *checker) loopFinding(ingress, sw int, path []int, cls *prove.Class) {
	key := fmt.Sprintf("%s|%d", KindLoop, sw)
	if ck.seen[key] {
		return
	}
	a, _ := cls.Concretize(ck.sp, "")
	ck.add(key, Finding{
		Kind: KindLoop, FilterID: -1, Host: -1, Ingress: ingress,
		Switch: ck.swName(sw), Path: ck.names(append(append([]int(nil), path...), sw)),
		Cex:     a,
		Message: fmt.Sprintf("loop: a packet published from %d revisits %s (path %v)", ingress, ck.swName(sw), ck.names(path)),
	})
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

package analysis

import (
	"testing"
)

// TestLoadPipeline loads a real repo package with full type info via
// the export-data importer.
func TestLoadPipeline(t *testing.T) {
	pkgs, err := Load(LoadConfig{Dir: "../.."}, "camus/internal/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.IllTyped {
		t.Fatalf("pipeline ill-typed: %v", p.Errs)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Switch") == nil {
		t.Fatalf("type info missing Switch")
	}
	if len(p.Syntax) == 0 {
		t.Fatal("no syntax")
	}
}

// TestLoadTests loads the in-package test variant when Tests is set.
func TestLoadTests(t *testing.T) {
	pkgs, err := Load(LoadConfig{Dir: "../..", Tests: true}, "camus/internal/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	var variants []string
	for _, p := range pkgs {
		if p.IllTyped {
			t.Errorf("%s ill-typed: %v", p.ImportPath, p.Errs)
		}
		variants = append(variants, p.ImportPath)
	}
	want := "camus/internal/pipeline [camus/internal/pipeline.test]"
	found := false
	for _, v := range variants {
		if v == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("test variant missing from %v", variants)
	}
}

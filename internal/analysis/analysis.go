// Package analysis is a self-contained static-analysis framework for
// the Camus repository: a minimal reimplementation of the
// golang.org/x/tools/go/analysis runner pattern on top of the standard
// library only (go/parser + go/types + `go list -export`), so the lint
// suite builds without any external module dependency.
//
// The framework loads packages with full type information (export data
// comes from the toolchain's build cache via `go list -export`), runs a
// set of Analyzers over each package's syntax, and collects position-
// tagged Diagnostics. The Camus-specific analyzers live in this package
// too; see All.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name, a short description, and a run
// function executed once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (kebab-case).
	Name string
	// Doc is a one-line description shown by camus-lint -help.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and types to an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// PkgPath returns the package's import path with any test-variant
// suffix stripped: "camus/internal/pipeline [camus/internal/pipeline.test]"
// and plain "camus/internal/pipeline" both report the latter, so
// analyzers exempting a package automatically exempt its test files.
func (p *Pass) PkgPath() string { return basePkgPath(p.Pkg.ImportPath) }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Column, d.Message, d.Analyzer)
}

// basePkgPath strips the " [foo.test]" variant suffix go list attaches
// to test-augmented packages.
func basePkgPath(ip string) string {
	if i := strings.Index(ip, " ["); i >= 0 {
		return ip[:i]
	}
	return ip
}

// Run loads the packages matching patterns and applies every analyzer
// to each, returning the diagnostics sorted by position. Packages that
// fail to type-check contribute their type errors as loader diagnostics
// so broken code surfaces instead of being silently skipped.
func Run(cfg LoadConfig, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	// A file is type-checked twice when tests are loaded (once in the
	// plain package, once in the test variant); identical findings are
	// deduplicated.
	seen := make(map[Diagnostic]bool)
	report := func(d Diagnostic) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pkg := range pkgs {
		if pkg.IllTyped {
			for _, e := range pkg.Errs {
				report(Diagnostic{
					File:     pkg.ImportPath,
					Analyzer: "loader",
					Message:  e.Error(),
				})
			}
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				d.File = d.Pos.Filename
				d.Line = d.Pos.Line
				d.Column = d.Pos.Column
				d.Pos = token.Position{} // comparable key: file/line/col only
				report(d)
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the Camus analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		SnapshotWriteAnalyzer,
		OptionsOnlyAnalyzer,
		AtomicMixAnalyzer,
		LockSendAnalyzer,
		FitGateAnalyzer,
	}
}

// --- shared type helpers -------------------------------------------------

// pipelinePath is the package whose invariants the suite protects.
const pipelinePath = "camus/internal/pipeline"

// namedType reports whether t (after unwrapping pointers and aliases)
// is the named type pkgPath.name, e.g. ("camus/internal/pipeline", "Switch").
func namedType(t types.Type, pkgPath, name string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// selectionField returns the field object a selector expression reads
// or writes, or nil when the selector is not a field access.
func selectionField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

package replay

import (
	"fmt"
	"sort"

	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/controller"
	"camus/internal/netsim"
	"camus/internal/spec"
)

// NetOutcome is one netcheck counterexample replayed network-wide on
// the simulated dataplane.
type NetOutcome struct {
	// Wire is the serialized witness packet; Headers its layout.
	Wire    []byte
	Headers []string
	// Want is the ground-truth delivery set: hosts with a stateless
	// subscription matching the witness (the publisher never receives
	// its own packet). Hosts with a stateful subscription are excluded
	// from the comparison — their delivery depends on register history
	// the wire cannot carry.
	Want []int
	// Runs holds each trial's observed delivery set, restricted to the
	// comparable hosts.
	Runs [][]int
	// Confirmed reports that at least one trial diverged from Want —
	// the symbolic finding is observable on the dataplane.
	Confirmed bool
}

// ConfirmNet replays a stateless netcheck counterexample through a
// fresh netsim instance of the deployment: the witness is serialized,
// decoded back, published from pub several times (cycling the
// round-robin up-path resolutions), and each trial's delivery set is
// compared against the subscription ground truth. trials ≤ 0 replays
// once per distinct up-path ((k/2)² for a k-ary fat tree).
func ConfirmNet(d *controller.Deployment, subs []netcheck.Subscription, cex *prove.Assignment, pub, trials int) (*NetOutcome, error) {
	if !cex.Stateless() {
		return nil, fmt.Errorf("replay: counterexample needs aggregate state %v; registers are not serializable", cex.State)
	}
	if pub < 0 || pub >= len(d.Network.Hosts) {
		return nil, fmt.Errorf("replay: publisher %d out of range", pub)
	}
	out := &NetOutcome{}
	var m *spec.Message
	var err error
	out.Wire, out.Headers, m, err = roundTrip(d.Spec, cex)
	if err != nil {
		return nil, err
	}

	want := make(map[int]bool)
	exclude := make(map[int]bool) // hosts with register-dependent subscriptions
	for _, s := range subs {
		matcher, err := prove.NewMatcher(s.Expr, true)
		if err != nil {
			return nil, fmt.Errorf("replay: filter %d: %w", s.ID, err)
		}
		if matcher.Stateful() {
			exclude[s.Host] = true
			continue
		}
		if s.Host != pub && matcher.Matches(cex) {
			want[s.Host] = true
		}
	}
	for h := range want {
		if !exclude[h] {
			out.Want = append(out.Want, h)
		}
	}
	sort.Ints(out.Want)

	sim, err := netsim.New(d)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		half := 1
		for _, sw := range d.Network.Switches {
			if n := len(sw.UpPorts()); n > half {
				half = n
			}
		}
		trials = half * half
	}
	for t := 0; t < trials; t++ {
		got := make(map[int]bool)
		for _, hd := range sim.Publish(pub, []*spec.Message{m}, len(out.Wire)) {
			if !exclude[hd.Host] {
				got[hd.Host] = true
			}
		}
		run := make([]int, 0, len(got))
		for h := range got {
			run = append(run, h)
		}
		sort.Ints(run)
		out.Runs = append(out.Runs, run)
		if len(run) != len(out.Want) {
			out.Confirmed = true
			continue
		}
		for i := range run {
			if run[i] != out.Want[i] {
				out.Confirmed = true
				break
			}
		}
	}
	return out, nil
}

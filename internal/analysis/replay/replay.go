// Package replay turns a prover counterexample into a wire packet and
// runs it through the real dataplane. The prover's verdicts are
// computed on two software models (its AST semantics and its neutral
// program IR); replay closes the loop by serializing the counterexample
// assignment with internal/packet, decoding it back, and replaying it
// through pipeline.Switch — confirming the divergence is observable on
// the shipping pipeline, not an artifact of either model.
package replay

import (
	"fmt"

	"camus/internal/analysis/prove"
	"camus/internal/compiler"
	"camus/internal/packet"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Outcome is one replayed counterexample.
type Outcome struct {
	// Wire is the serialized packet: the present headers' encodings
	// concatenated in spec declaration order.
	Wire []byte
	// Headers lists the serialized headers, in order.
	Headers []string
	// Want is the rule set's ground-truth action set for the packet;
	// WantUpdates the register updates it owes.
	Want        subscription.ActionSet
	WantUpdates []string
	// Got is what pipeline.Switch actually did with the decoded packet;
	// GotUpdates the register updates it fired.
	Got        subscription.ActionSet
	GotUpdates []string
	// Ports is the delivery port set from Switch.Process.
	Ports []int
}

// Diverges reports whether the pipeline's behavior differs from the
// rule set's ground truth.
func (o *Outcome) Diverges() bool {
	if !o.Want.Equal(o.Got) {
		return true
	}
	if len(o.WantUpdates) != len(o.GotUpdates) {
		return true
	}
	for i := range o.WantUpdates {
		if o.WantUpdates[i] != o.GotUpdates[i] {
			return true
		}
	}
	return false
}

// Confirm serializes a counterexample assignment, decodes it back and
// replays it through a fresh pipeline.Switch running prog, comparing
// the result against the rule set's ground truth under the prover's
// last-hop options. Only stateless counterexamples replay: aggregate
// registers live inside the switch and are not on the wire.
func Confirm(sp *spec.Spec, prog *compiler.Program, rules []*subscription.Rule,
	cex *prove.Assignment, opts prove.Options) (*Outcome, error) {
	if !cex.Stateless() {
		return nil, fmt.Errorf("replay: counterexample needs aggregate state %v; registers are not serializable", cex.State)
	}

	out := &Outcome{}
	var m *spec.Message
	var err error
	out.Wire, out.Headers, m, err = roundTrip(sp, cex)
	if err != nil {
		return nil, err
	}
	out.Want, out.WantUpdates, err = prove.EvalRules(rules, opts, cex)
	if err != nil {
		return nil, err
	}

	sw, err := pipeline.NewSwitch("replay", nil, prog, pipeline.WithIngressDrop(false))
	if err != nil {
		return nil, err
	}
	out.Got = sw.EvalMessage(m, 0)
	if le := prog.Lookup(m, cex.MapState()); le != nil {
		out.GotUpdates = append([]string(nil), le.Updates...)
		sortStrings(out.GotUpdates)
	}
	for _, d := range sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{m}, Bytes: len(out.Wire)}, 0) {
		out.Ports = append(out.Ports, d.Port)
	}
	return out, nil
}

// roundTrip serializes the present headers in declaration order, then
// decodes the bytes back into a fresh message — the replayed packet is
// exactly what a wire round-trip preserves.
func roundTrip(sp *spec.Spec, cex *prove.Assignment) (wire []byte, headers []string, m *spec.Message, err error) {
	for _, h := range sp.Headers {
		if !cex.Headers[h.Name] {
			continue
		}
		codec, cerr := packet.NewHeaderCodec(sp, h.Name)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		values := make(map[string]spec.Value)
		for _, f := range h.Fields {
			if v, ok := cex.Fields[f.QName()]; ok {
				values[f.Name] = v
			}
		}
		if wire, err = codec.Append(wire, values); err != nil {
			return nil, nil, nil, fmt.Errorf("replay: encode %s: %w", h.Name, err)
		}
		headers = append(headers, h.Name)
	}
	m = spec.NewMessage(sp)
	rest := wire
	for _, name := range headers {
		codec, cerr := packet.NewHeaderCodec(sp, name)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		if rest, err = codec.Decode(rest, m); err != nil {
			return nil, nil, nil, fmt.Errorf("replay: decode %s: %w", name, err)
		}
	}
	if len(rest) != 0 {
		return nil, nil, nil, fmt.Errorf("replay: %d trailing bytes after decode", len(rest))
	}
	return wire, headers, m, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

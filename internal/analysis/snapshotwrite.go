package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotWriteAnalyzer flags writes to fields of snapshot value types:
// pipeline.StatsSnapshot (returned by Switch.Stats) and pipeline.Config
// (returned by Switch.Config / DefaultConfig). Both are immutable
// copies — a StatsSnapshot never feeds back into the switch, and a
// switch's Config is frozen at construction — so mutating one outside
// internal/pipeline is at best a useless write and usually a
// misunderstanding of the snapshot contract (PR 1's concurrency model:
// read counters only via snapshots, configure only via options).
//
// The defining package is exempt: it legitimately assembles snapshots
// and normalizes Configs before freezing them.
var SnapshotWriteAnalyzer = &Analyzer{
	Name: "camus-snapshot",
	Doc:  "flag mutation of StatsSnapshot/Config snapshot values (useless writes)",
	Run:  runSnapshotWrite,
}

// snapshotTypes are the protected value types in pipelinePath.
var snapshotTypes = []string{"StatsSnapshot", "Config"}

func runSnapshotWrite(pass *Pass) {
	if pass.PkgPath() == pipelinePath {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkSnapshotLHS(pass, info, lhs)
				}
			case *ast.IncDecStmt:
				checkSnapshotLHS(pass, info, st.X)
			}
			return true
		})
	}
}

// checkSnapshotLHS reports when an assignment target is a field
// selector on one of the snapshot types.
func checkSnapshotLHS(pass *Pass, info *types.Info, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if selectionField(info, sel) == nil {
		return
	}
	base := info.TypeOf(sel.X)
	if base == nil {
		return
	}
	for _, name := range snapshotTypes {
		if namedType(base, pipelinePath, name) {
			pass.Reportf(lhs.Pos(),
				"write to %s.%s mutates a %s snapshot copy and has no effect on the switch",
				exprString(sel.X), sel.Sel.Name, name)
			return
		}
	}
}

package rulecheck

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"camus/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

func corpusSpec(t *testing.T) *spec.Spec {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "corpus", "market.spec"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse("market", string(src))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestCorpusGoldens verifies every corpus rule file and compares the
// human-readable report with its .golden sibling (regenerate with
// `go test ./internal/analysis/rulecheck -update`).
func TestCorpusGoldens(t *testing.T) {
	sp := corpusSpec(t)
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	sort.Strings(files)
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".rules")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			rep := Verify(sp, filepath.Base(f), string(src))
			got := rep.String()
			golden := strings.TrimSuffix(f, ".rules") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestCorpusJSONGolden locks the machine-readable format.
func TestCorpusJSONGolden(t *testing.T) {
	sp := corpusSpec(t)
	f := filepath.Join("testdata", "corpus", "unsat.rules")
	src, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(sp, "unsat.rules", string(src))
	got := rep.JSON() + "\n"
	golden := filepath.Join("testdata", "corpus", "unsat.json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("JSON drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSeededFindingsDetected spells out the acceptance criteria
// independent of golden formatting: every seeded bad rule is detected
// with the right kind.
func TestSeededFindingsDetected(t *testing.T) {
	sp := corpusSpec(t)
	read := func(name string) *Report {
		t.Helper()
		src, err := os.ReadFile(filepath.Join("testdata", "corpus", name))
		if err != nil {
			t.Fatal(err)
		}
		return Verify(sp, name, string(src))
	}

	unsat := read("unsat.rules")
	wantKinds(t, unsat, map[int]Kind{0: KindUnsatisfiable, 1: KindUnsatisfiable, 2: KindUnsatisfiable, 4: KindUnsatisfiable})
	if hasFindingFor(unsat, 3) {
		t.Errorf("unsat.rules: satisfiable control rule 3 was flagged")
	}

	// Rule 1 is inside rule 0 with the identical action: the sharper
	// redundant diagnosis replaces the union-shadow one. Rule 4 needs
	// the union of 2 and 3, so it stays a plain shadow.
	sh := read("shadowed.rules")
	wantKinds(t, sh, map[int]Kind{1: KindRedundant, 4: KindShadowed})
	for _, id := range []int{0, 2, 3} {
		if hasFindingFor(sh, id) {
			t.Errorf("shadowed.rules: rule %d wrongly flagged", id)
		}
	}
	for _, f := range sh.Findings {
		switch f.RuleID {
		case 1:
			if f.Kind == KindShadowed {
				t.Error("redundant rule 1 must not double-report as shadowed")
			}
			if len(f.Related) != 1 || f.Related[0] != 0 {
				t.Errorf("redundancy witness of rule 1 = %v, want [0]", f.Related)
			}
		case 4:
			if len(f.Related) != 2 || f.Related[0] != 2 || f.Related[1] != 3 {
				t.Errorf("shadow cover of rule 4 = %v, want [2 3]", f.Related)
			}
		}
	}

	red := read("redundant.rules")
	wantKinds(t, red, map[int]Kind{1: KindRedundant, 3: KindRedundant, 5: KindRedundant})
	for _, id := range []int{0, 2, 4, 6, 7} {
		if hasFindingFor(red, id) {
			t.Errorf("redundant.rules: rule %d wrongly flagged", id)
		}
	}
	wantWitness := map[int]int{1: 0, 3: 2, 5: 4}
	for _, f := range red.Findings {
		if want, ok := wantWitness[f.RuleID]; ok {
			if len(f.Related) != 1 || f.Related[0] != want {
				t.Errorf("redundancy witness of rule %d = %v, want [%d]", f.RuleID, f.Related, want)
			}
		}
	}

	conf := read("conflict.rules")
	var kinds []Kind
	for _, f := range conf.Findings {
		kinds = append(kinds, f.Kind)
	}
	if n := countKind(conf, KindConflict); n != 2 {
		t.Errorf("conflict.rules: %d conflict findings (want 2): %v", n, kinds)
	}

	unk := read("unknown.rules")
	if n := countKind(unk, KindUnknownField); n != 2 {
		t.Errorf("unknown.rules: %d unknown-field findings (want 2)", n)
	}
	if n := countKind(unk, KindParseError); n != 2 {
		t.Errorf("unknown.rules: %d parse-error findings (want 2)", n)
	}
	if unk.Rules != 1 {
		t.Errorf("unknown.rules: %d rules survived parsing (want 1: the clean control)", unk.Rules)
	}

	// The resources entry compiles fine but demands five distinct
	// aggregate windows — one more than the modeled stateful registers.
	// The verdict is delegated to fitcheck's per-stage placement model.
	res := read("resources.rules")
	if n := countKind(res, KindResources); n != 1 {
		t.Errorf("resources.rules: %d resources findings (want 1)", n)
	}
	for _, f := range res.Findings {
		if f.Kind == KindResources {
			if f.Severity != SevError {
				t.Errorf("resources finding severity = %s, want error", f.Severity)
			}
			if !strings.Contains(f.Message, "fit-registers") {
				t.Errorf("resources finding must carry the fit dimension, got: %s", f.Message)
			}
		}
	}
}

// TestRepoExamplesClean asserts the repo's own shipped rule files carry
// zero findings.
func TestRepoExamplesClean(t *testing.T) {
	specSrc, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "camusc", "testdata", "itch.spec"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse("itch", string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	rulesSrc, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "camusc", "testdata", "itch.rules"))
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(sp, "itch.rules", string(rulesSrc))
	for _, f := range rep.Findings {
		t.Errorf("itch.rules should be clean, got: %s", f)
	}
	if rep.Rules != 5 {
		t.Errorf("itch.rules parsed %d rules, want 5", rep.Rules)
	}
}

func wantKinds(t *testing.T, rep *Report, want map[int]Kind) {
	t.Helper()
	for id, kind := range want {
		found := false
		for _, f := range rep.Findings {
			if f.RuleID == id && f.Kind == kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: missing %s finding for rule %d; got %v", rep.File, kind, id, rep.Findings)
		}
	}
}

func hasFindingFor(rep *Report, id int) bool {
	for _, f := range rep.Findings {
		if f.RuleID == id {
			return true
		}
	}
	return false
}

func countKind(rep *Report, k Kind) int {
	n := 0
	for _, f := range rep.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

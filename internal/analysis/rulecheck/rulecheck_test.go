package rulecheck

import (
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"camus/internal/analysis/report"
	"camus/internal/compiler"
	"camus/internal/packet"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/subscription"
)

var update = flag.Bool("update", false, "rewrite golden files")

func corpusSpec(t *testing.T) *spec.Spec {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "corpus", "market.spec"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse("market", string(src))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestCorpusGoldens verifies every corpus rule file and compares the
// human-readable report with its .golden sibling (regenerate with
// `go test ./internal/analysis/rulecheck -update`).
func TestCorpusGoldens(t *testing.T) {
	sp := corpusSpec(t)
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	sort.Strings(files)
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".rules")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			rep := Verify(sp, filepath.Base(f), string(src))
			got := rep.String()
			golden := strings.TrimSuffix(f, ".rules") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestCorpusJSONGolden locks the machine-readable format.
func TestCorpusJSONGolden(t *testing.T) {
	sp := corpusSpec(t)
	f := filepath.Join("testdata", "corpus", "unsat.rules")
	src, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(sp, "unsat.rules", string(src))
	got := rep.JSON() + "\n"
	golden := filepath.Join("testdata", "corpus", "unsat.json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("JSON drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSeededFindingsDetected spells out the acceptance criteria
// independent of golden formatting: every seeded bad rule is detected
// with the right kind.
func TestSeededFindingsDetected(t *testing.T) {
	sp := corpusSpec(t)
	read := func(name string) *Report {
		t.Helper()
		src, err := os.ReadFile(filepath.Join("testdata", "corpus", name))
		if err != nil {
			t.Fatal(err)
		}
		return Verify(sp, name, string(src))
	}

	unsat := read("unsat.rules")
	wantKinds(t, unsat, map[int]Kind{0: KindUnsatisfiable, 1: KindUnsatisfiable, 2: KindUnsatisfiable, 4: KindUnsatisfiable})
	if hasFindingFor(unsat, 3) {
		t.Errorf("unsat.rules: satisfiable control rule 3 was flagged")
	}

	// Rule 1 is inside rule 0 with the identical action: the sharper
	// redundant diagnosis replaces the union-shadow one. Rule 4 needs
	// the union of 2 and 3, so it stays a plain shadow.
	sh := read("shadowed.rules")
	wantKinds(t, sh, map[int]Kind{1: KindRedundant, 4: KindShadowed})
	for _, id := range []int{0, 2, 3} {
		if hasFindingFor(sh, id) {
			t.Errorf("shadowed.rules: rule %d wrongly flagged", id)
		}
	}
	for _, f := range sh.Findings {
		switch f.RuleID {
		case 1:
			if f.Kind == KindShadowed {
				t.Error("redundant rule 1 must not double-report as shadowed")
			}
			if len(f.Related) != 1 || f.Related[0] != 0 {
				t.Errorf("redundancy witness of rule 1 = %v, want [0]", f.Related)
			}
		case 4:
			if len(f.Related) != 2 || f.Related[0] != 2 || f.Related[1] != 3 {
				t.Errorf("shadow cover of rule 4 = %v, want [2 3]", f.Related)
			}
		}
	}

	red := read("redundant.rules")
	wantKinds(t, red, map[int]Kind{1: KindRedundant, 3: KindRedundant, 5: KindRedundant})
	for _, id := range []int{0, 2, 4, 6, 7} {
		if hasFindingFor(red, id) {
			t.Errorf("redundant.rules: rule %d wrongly flagged", id)
		}
	}
	wantWitness := map[int]int{1: 0, 3: 2, 5: 4}
	for _, f := range red.Findings {
		if want, ok := wantWitness[f.RuleID]; ok {
			if len(f.Related) != 1 || f.Related[0] != want {
				t.Errorf("redundancy witness of rule %d = %v, want [%d]", f.RuleID, f.Related, want)
			}
		}
	}

	conf := read("conflict.rules")
	var kinds []Kind
	for _, f := range conf.Findings {
		kinds = append(kinds, f.Kind)
	}
	if n := countKind(conf, KindConflict); n != 2 {
		t.Errorf("conflict.rules: %d conflict findings (want 2): %v", n, kinds)
	}

	unk := read("unknown.rules")
	if n := countKind(unk, KindUnknownField); n != 2 {
		t.Errorf("unknown.rules: %d unknown-field findings (want 2)", n)
	}
	if n := countKind(unk, KindParseError); n != 2 {
		t.Errorf("unknown.rules: %d parse-error findings (want 2)", n)
	}
	if unk.Rules != 1 {
		t.Errorf("unknown.rules: %d rules survived parsing (want 1: the clean control)", unk.Rules)
	}

	// The cache-hiding entries refine cacheable key-only rules on the
	// str16 name field, which cannot live in the packed leaf-cache key.
	// The aggregate refinement (rule 4) compiles to an uncacheable leaf
	// and must stay clean.
	ch := read("cachehiding.rules")
	wantKinds(t, ch, map[int]Kind{1: KindCacheHiding, 3: KindCacheHiding})
	for _, id := range []int{0, 2, 4} {
		if hasFindingFor(ch, id) {
			t.Errorf("cachehiding.rules: rule %d wrongly flagged", id)
		}
	}
	for _, f := range ch.Findings {
		if f.Kind != KindCacheHiding {
			continue
		}
		if f.Severity != SevWarning {
			t.Errorf("cache-hiding severity = %s, want warning", f.Severity)
		}
		if f.Counterexample == nil || f.Counterexample.Packet == "" {
			t.Errorf("cache-hiding finding for rule %d lacks a wire counterexample", f.RuleID)
		}
		switch f.RuleID {
		case 1:
			if len(f.Related) != 1 || f.Related[0] != 0 {
				t.Errorf("hiding cover of rule 1 = %v, want [0]", f.Related)
			}
		case 3:
			if len(f.Related) != 2 || f.Related[0] != 0 || f.Related[1] != 2 {
				t.Errorf("hiding cover of rule 3 = %v, want [0 2]", f.Related)
			}
		}
	}

	// The resources entry compiles fine but demands five distinct
	// aggregate windows — one more than the modeled stateful registers.
	// The verdict is delegated to fitcheck's per-stage placement model.
	res := read("resources.rules")
	if n := countKind(res, KindResources); n != 1 {
		t.Errorf("resources.rules: %d resources findings (want 1)", n)
	}
	for _, f := range res.Findings {
		if f.Kind == KindResources {
			if f.Severity != SevError {
				t.Errorf("resources finding severity = %s, want error", f.Severity)
			}
			if !strings.Contains(f.Message, "fit-registers") {
				t.Errorf("resources finding must carry the fit dimension, got: %s", f.Message)
			}
		}
	}
}

// TestRepoExamplesClean asserts the repo's own shipped rule files carry
// zero findings.
func TestRepoExamplesClean(t *testing.T) {
	specSrc, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "camusc", "testdata", "itch.spec"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse("itch", string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	rulesSrc, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "camusc", "testdata", "itch.rules"))
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(sp, "itch.rules", string(rulesSrc))
	for _, f := range rep.Findings {
		t.Errorf("itch.rules should be clean, got: %s", f)
	}
	if rep.Rules != 5 {
		t.Errorf("itch.rules parsed %d rules, want 5", rep.Rules)
	}
}

// TestCacheHidingCounterexampleReplays closes the loop on one seeded
// violation: the finding's wire counterexample is decoded and replayed
// through a leaf-cache-enabled pipeline.Switch whose cache was warmed
// from the coarse rule's region with a same-key packet. The dataplane
// must deliver the merged action set (the walk-purity fill rule refuses
// to memoize the overlap), while the finding's Got field records what a
// naive key-only cache would have served instead.
func TestCacheHidingCounterexampleReplays(t *testing.T) {
	sp := corpusSpec(t)
	src, err := os.ReadFile(filepath.Join("testdata", "corpus", "cachehiding.rules"))
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(sp, "cachehiding.rules", string(src))
	var cex *report.Counterexample
	for _, f := range rep.Findings {
		if f.Kind == KindCacheHiding && f.RuleID == 1 {
			cex = f.Counterexample
		}
	}
	if cex == nil || cex.Packet == "" {
		t.Fatal("no replayable counterexample on the seeded rule-1 finding")
	}
	wire, err := hex.DecodeString(cex.Packet)
	if err != nil {
		t.Fatalf("counterexample packet is not hex: %v", err)
	}
	m := spec.NewMessage(sp)
	rest := wire
	for _, h := range cex.Headers {
		codec, err := packet.NewHeaderCodec(sp, h)
		if err != nil {
			t.Fatal(err)
		}
		if rest, err = codec.Decode(rest, m); err != nil {
			t.Fatalf("decode %s: %v", h, err)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(rest))
	}

	rules, err := subscription.NewParser(sp).ParseRules(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := pipeline.NewSwitch("replay", nil, prog, pipeline.WithIngressDrop(false))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the leaf cache from the coarse region: same key fields as
	// the witness (name is not a key field), different name.
	coarse := spec.NewMessage(sp)
	coarse.MarkHeader("market")
	coarse.MustSet("stock", spec.StrVal("GOOGL"))
	coarse.MustSet("name", spec.StrVal("ORDINARY"))
	for i := 0; i < 2; i++ {
		sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{coarse}}, 0)
	}
	// Port 5 may ride along: interior (non-last-hop) switches forward
	// aggregate-refined rules conservatively (§II). The hiding question
	// is about ports 1 and 2: a key-only cache would drop port 2.
	got := map[int]bool{}
	for _, d := range sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{m}, Bytes: len(wire)}, 0) {
		got[d.Port] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("replayed counterexample delivered to %v, want ports 1 and 2 (port 2 is what a key-only cache would hide)", got)
	}
	if cex.Want != "fwd(1,2)" || cex.Got != "fwd(1)" {
		t.Fatalf("counterexample want/got = %q/%q", cex.Want, cex.Got)
	}
}

func wantKinds(t *testing.T, rep *Report, want map[int]Kind) {
	t.Helper()
	for id, kind := range want {
		found := false
		for _, f := range rep.Findings {
			if f.RuleID == id && f.Kind == kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: missing %s finding for rule %d; got %v", rep.File, kind, id, rep.Findings)
		}
	}
}

func hasFindingFor(rep *Report, id int) bool {
	for _, f := range rep.Findings {
		if f.RuleID == id {
			return true
		}
	}
	return false
}

func countKind(rep *Report, k Kind) int {
	n := 0
	for _, f := range rep.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

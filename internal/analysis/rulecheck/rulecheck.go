// Package rulecheck verifies subscription rule tables symbolically: it
// compiles the table through the repository's BDD path
// (subscription.NormalizeRule → bdd.BuildNormalized) with one marker
// action per rule, then reads rule-level properties straight off the
// diagram:
//
//   - unsatisfiable: the rule's marker reaches no terminal — no packet
//     can ever match the filter;
//
//   - shadowed: at every terminal carrying the rule's marker, earlier
//     rules are present too AND their merged actions already subsume
//     this rule's action — the filter is implied by the union of the
//     rules before it and, under Camus merge semantics (§V-D), removing
//     the rule would leave the compiled program unchanged. A rule whose
//     filter is implied but whose action adds a new port or custom
//     action to some region is NOT shadowed: it still shapes forwarding
//     (itch.rules' aggregate rule fwd(5) under the broader GOOGL fwd(2)
//     rule is the canonical example);
//
//   - redundant: a strictly sharper diagnosis of shadowing — some
//     single earlier rule with the identical action is present at every
//     terminal the rule reaches, i.e. the filter is implied by that one
//     rule alone. Deleting the rule provably leaves the table
//     unchanged, and unlike a union shadow there is one specific rule
//     to point at. Redundant rules suppress their shadowed finding;
//
//   - conflict: some terminal carries two markers whose actions
//     contradict — an explicit drop overlapping a forward, or one
//     custom action name invoked with different arguments (e.g. two
//     answerDNS rules giving different addresses for one query);
//
//   - cache-hiding: a rule refines an overlapping leaf-cacheable rule
//     on a field outside the dataplane leaf-cache key, so a decision
//     cache keyed on the packed fields alone would hide the refining
//     rule's action (see checkCacheHiding in cachehiding.go).
//
// Soundness rests on the builder's domain pruning (reduction iii):
// with pruning on, every root-to-terminal path is satisfiable — atoms
// constrain single fields against constants, so per-field consistency
// is global consistency — which makes the three reads above exact,
// not approximations.
//
// Scope caveat: exact *relative to the BDD engine*. Because this
// verifier re-queries the same internal/bdd implementation the
// compiler builds on, its checks are self-consistency checks of the
// rule table — a bug shared by the engine and the compiler is
// invisible here by construction. Proving that the *compiled program*
// implements the rules is translation validation and is deliberately
// out of scope: internal/analysis/prove (camusc prove) re-derives the
// semantics independently and certifies the emitted tables.
//
// Fields referenced but absent from the message spec, and any other
// parse or type-check failure, are reported per line with the
// verifier continuing to the next line.
package rulecheck

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"camus/internal/analysis/fitcheck"
	"camus/internal/analysis/report"
	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Tool is this verifier's name in the shared report envelope.
const Tool = "camusc-vet"

// Kind, Severity, Finding and Report alias the shared analysis
// envelope (internal/analysis/report): camusc vet emits the same
// diagnostic schema as camus-lint and camusc prove.
type Kind = report.Kind

const (
	// KindParseError is a rule that failed to parse or type-check.
	KindParseError Kind = "parse-error"
	// KindUnknownField is a parse failure caused by a field missing
	// from the message spec.
	KindUnknownField Kind = "unknown-field"
	// KindUnsatisfiable is a filter no packet can match.
	KindUnsatisfiable Kind = "unsatisfiable"
	// KindShadowed is a filter implied by the union of earlier rules.
	KindShadowed Kind = "shadowed"
	// KindRedundant is a filter implied by a single earlier rule whose
	// action is identical — the sharp special case of shadowing where
	// one specific rule makes this one deletable.
	KindRedundant Kind = "redundant"
	// KindConflict is a pair of overlapping rules with contradictory
	// actions.
	KindConflict Kind = "conflict"
	// KindCacheHiding is a rule that a key-only forwarding decision
	// cache would hide behind an overlapping leaf-cacheable rule,
	// because the rule refines it on a field outside the packed leaf
	// key (see checkCacheHiding).
	KindCacheHiding Kind = "cache-hiding"
	// KindResources is a table that compiles but exceeds the modeled
	// switch resources.
	KindResources Kind = "resources"
	// KindOverflow reports that symbolic analysis was abandoned
	// because the diagram exceeded the node budget.
	KindOverflow Kind = "analysis-overflow"
)

// Severity grades a finding.
type Severity = report.Severity

const (
	SevError   = report.SevError
	SevWarning = report.SevWarning
)

// Finding is one diagnostic in the shared envelope.
type Finding = report.Finding

// Report is the result of verifying one rule file.
type Report = report.Report

// maxAnalysisNodes bounds the marker diagram; distinct markers defeat
// terminal sharing, so the cap guards against pathological tables.
const maxAnalysisNodes = 1 << 21

// Verify parses and symbolically checks a rule file against a spec.
// file names the source in diagnostics; src is the file content.
func Verify(sp *spec.Spec, file, src string) *Report {
	rep := &Report{Tool: Tool, File: file}
	parser := subscription.NewParser(sp)

	// Per-line parse with error recovery: every bad line is reported,
	// not just the first.
	var rules []*subscription.Rule
	ruleLine := make(map[int]int) // rule ID → 1-based line
	for i, line := range strings.Split(src, "\n") {
		lineRules, err := parser.ParseRuleLine(line, len(rules))
		if err != nil {
			kind, sev := KindParseError, SevError
			if errors.Is(err, subscription.ErrUnknownField) {
				kind = KindUnknownField
			}
			rep.Findings = append(rep.Findings, Finding{
				Tool: Tool, File: file, Line: i + 1, RuleID: -1, Kind: kind, Severity: sev,
				Message: err.Error(),
			})
			continue
		}
		for _, r := range lineRules {
			ruleLine[r.ID] = i + 1
		}
		rules = append(rules, lineRules...)
	}
	rep.Rules = len(rules)
	if len(rules) == 0 {
		sortFindings(rep.Findings)
		return rep
	}

	rep.Findings = append(rep.Findings, verifyTable(sp, file, rules, ruleLine)...)
	rep.Findings = append(rep.Findings, checkCacheHiding(sp, file, rules, ruleLine)...)
	sortFindings(rep.Findings)
	return rep
}

// verifyTable runs the symbolic checks over successfully parsed rules.
func verifyTable(sp *spec.Spec, file string, rules []*subscription.Rule, ruleLine map[int]int) []Finding {
	var out []Finding
	finding := func(id int, kind Kind, sev Severity, related []int, format string, args ...interface{}) {
		out = append(out, Finding{
			Tool: Tool, File: file, Line: ruleLine[id], RuleID: id, Kind: kind, Severity: sev,
			Message: fmt.Sprintf(format, args...), RuleText: rules[id].String(),
			Related: related,
		})
	}

	// Re-tag every rule disjunct with a marker action carrying its rule
	// ID, so terminals of the merged diagram name the exact set of
	// rules matching each packet region.
	var normalized []subscription.NormalizedRule
	analyzable := make(map[int]bool, len(rules))
	for _, r := range rules {
		nrs, err := subscription.NormalizeRule(&subscription.Rule{ID: r.ID, Filter: r.Filter, Action: markAction(r.ID)})
		if err != nil {
			finding(r.ID, KindParseError, SevError, nil, "cannot normalize filter: %v", err)
			continue
		}
		analyzable[r.ID] = true
		// A rule whose DNF is empty is already unsatisfiable; keep it
		// out of the build but let the marker scan report it uniformly.
		normalized = append(normalized, nrs...)
	}

	d, err := bdd.BuildNormalized(sp, normalized, bdd.Options{MaxNodes: maxAnalysisNodes})
	if err != nil {
		sev := SevError
		kind := KindParseError
		if errors.Is(err, bdd.ErrTooLarge) {
			kind, sev = KindOverflow, SevWarning
		}
		return append(out, Finding{
			Tool: Tool, File: file, RuleID: -1, Kind: kind, Severity: sev,
			Message: fmt.Sprintf("symbolic analysis failed: %v", err),
		})
	}

	// One pass over the reachable terminals gathers everything the
	// three checks need.
	present := make(map[int]bool)
	shadowed := make(map[int]bool)
	covers := make(map[int]map[int]bool)     // rule → union of earlier rules co-resident at its terminals
	alwaysWith := make(map[int]map[int]bool) // rule → intersection of earlier rules across its terminals
	conflicts := make(map[[2]int]bool)       // ordered pair → seen
	for id := range analyzable {
		shadowed[id] = true // until a terminal proves sole reach
	}
	for _, n := range d.Reachable() {
		if !n.IsTerminal() {
			continue
		}
		ids := markerIDs(n.Actions)
		if len(ids) == 0 {
			continue
		}
		for _, id := range ids {
			present[id] = true
		}
		// Shadowing: rule id keeps its shadowed flag only if, at every
		// terminal it reaches, earlier rules are present whose merged
		// actions subsume its own — i.e. the rule contributes neither
		// reach nor forwarding behaviour there. alwaysWith narrows to
		// the earlier rules present at ALL of id's terminals: a
		// non-empty intersection is a single-rule implication witness.
		for _, id := range ids {
			earlier := earliestOthers(ids, id)
			if cur, seen := alwaysWith[id]; !seen {
				set := make(map[int]bool, len(earlier))
				for _, e := range earlier {
					set[e] = true
				}
				alwaysWith[id] = set
			} else {
				keep := make(map[int]bool, len(cur))
				for _, e := range earlier {
					if cur[e] {
						keep[e] = true
					}
				}
				alwaysWith[id] = keep
			}
			if len(earlier) == 0 {
				shadowed[id] = false
				continue
			}
			var merged subscription.ActionSet
			for _, e := range earlier {
				merged.Add(rules[e].Action)
			}
			if !subsumes(merged, rules[id].Action) {
				shadowed[id] = false
				continue
			}
			if covers[id] == nil {
				covers[id] = make(map[int]bool)
			}
			for _, e := range earlier {
				covers[id][e] = true
			}
		}
		// Conflicts: check each co-resident pair's original actions.
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if conflicts[[2]int{a, b}] {
					continue
				}
				if reason := actionConflict(rules[a].Action, rules[b].Action); reason != "" {
					conflicts[[2]int{a, b}] = true
					finding(b, KindConflict, SevError, []int{a},
						"overlapping filters with contradictory actions: %s", reason)
				}
			}
		}
	}

	ids := make([]int, 0, len(analyzable))
	for id := range analyzable {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !present[id] {
			finding(id, KindUnsatisfiable, SevError, nil, "filter can never match any packet")
			continue
		}
		if shadowed[id] && len(covers[id]) > 0 {
			// Prefer the sharper diagnosis: a single always-co-present
			// earlier rule with the identical action makes this rule
			// redundant — deletable with one specific rule to blame.
			var dup []int
			for e := range alwaysWith[id] {
				if sameAction(rules[e].Action, rules[id].Action) {
					dup = append(dup, e)
				}
			}
			if len(dup) > 0 {
				sort.Ints(dup)
				finding(id, KindRedundant, SevWarning, dup,
					"redundant: an earlier rule with the identical action already matches every packet this filter matches; deleting this rule leaves the table unchanged")
				continue
			}
			cov := make([]int, 0, len(covers[id]))
			for c := range covers[id] {
				cov = append(cov, c)
			}
			sort.Ints(cov)
			finding(id, KindShadowed, SevWarning, cov,
				"fully shadowed: the union of earlier rules implies this filter and already performs its action")
		}
	}

	// The real compile pass (validity guards, table layout) reports
	// resource overflow on the table as written. Delegate the verdict
	// to fitcheck's per-stage placement model, compiling for a last-hop
	// switch: that placement realizes the stateful (aggregate) stages,
	// so it is the largest the rules demand anywhere in the network.
	if prog, err := compiler.Compile(sp, rules, compiler.Options{LastHop: true}); err == nil {
		l := fitcheck.Analyze(prog, fitcheck.Options{File: file, SkipHeadroom: true})
		for _, f := range l.Findings {
			out = append(out, Finding{
				Tool: Tool, File: file, RuleID: -1, Kind: KindResources, Severity: f.Severity,
				Message: fmt.Sprintf("compiled table exceeds the modeled switch resources: %s (%s)", f.Message, f.Kind),
			})
		}
	}
	return out
}

// markAction builds the per-rule marker action. The name is outside
// the identifier grammar, so it can never collide with a user action.
func markAction(id int) subscription.Action {
	return subscription.Action{Name: "\x00mark", Args: []string{strconv.Itoa(id)}}
}

// markerIDs extracts the rule IDs present at a terminal.
func markerIDs(acts subscription.ActionSet) []int {
	var ids []int
	for _, c := range acts.Custom {
		if c.Name != "\x00mark" || len(c.Args) != 1 {
			continue
		}
		if id, err := strconv.Atoi(c.Args[0]); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// subsumes reports whether the merged action set already carries every
// effect of act: all fwd ports present, and any custom action present
// by exact key. The empty (drop) action is subsumed by anything.
func subsumes(set subscription.ActionSet, act subscription.Action) bool {
	if act.IsFwd() {
		have := make(map[int]bool, len(set.Ports))
		for _, p := range set.Ports {
			have[p] = true
		}
		for _, p := range act.Ports {
			if !have[p] {
				return false
			}
		}
		return true
	}
	key := act.Key()
	for _, c := range set.Custom {
		if c.Key() == key {
			return true
		}
	}
	return false
}

// sameAction reports whether two actions are identical effects:
// forwarding to the same port set (order-insensitive), or the same
// custom action with the same arguments.
func sameAction(a, b subscription.Action) bool {
	if a.IsFwd() != b.IsFwd() {
		return false
	}
	if a.IsFwd() {
		if len(a.Ports) != len(b.Ports) {
			return false
		}
		have := make(map[int]bool, len(a.Ports))
		for _, p := range a.Ports {
			have[p] = true
		}
		for _, p := range b.Ports {
			if !have[p] {
				return false
			}
		}
		return true
	}
	return a.Key() == b.Key()
}

// earliestOthers returns the IDs in ids smaller than id.
func earliestOthers(ids []int, id int) []int {
	var out []int
	for _, o := range ids {
		if o < id {
			out = append(out, o)
		}
	}
	return out
}

// actionConflict reports why two actions on overlapping filters
// contradict, or "" when they merge cleanly. Forwarding actions merge
// into multicast (paper §V-D) unless exactly one side is an explicit
// drop; custom actions conflict when one name gets different
// arguments.
func actionConflict(a, b subscription.Action) string {
	if a.IsFwd() && b.IsFwd() {
		if (len(a.Ports) == 0) != (len(b.Ports) == 0) {
			return fmt.Sprintf("%s vs %s (drop overlaps forward)", a, b)
		}
		return ""
	}
	if !a.IsFwd() && !b.IsFwd() && a.Name == b.Name && a.Key() != b.Key() {
		return fmt.Sprintf("%s vs %s (same action, different arguments)", a, b)
	}
	return ""
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Kind < fs[j].Kind
	})
}

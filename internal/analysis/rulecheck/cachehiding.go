package rulecheck

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"camus/internal/analysis/prove"
	"camus/internal/analysis/report"
	"camus/internal/packet"
	"camus/internal/pipeline"
	"camus/internal/routing/cover"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// checkCacheHiding flags the FIB cache-hiding hazard for the dataplane
// leaf cache (DESIGN.md §16). The leaf cache memoizes a final
// forwarding decision under a key built from the first
// pipeline.LeafKeySlots packable subscribable fields plus the header
// validity mask; fields outside that key (late declarations, strings
// wider than 8 bytes) are invisible to it. If a cacheable key-only rule
// g overlaps a rule f that refines g on a non-key field, then a
// decision cache keyed only on the packed key and filled from g's
// region would keep serving g's action to same-key packets that also
// match f — silently hiding f's forwarding. The shipping dataplane
// refuses such fills (the walk-purity rule: a lookup that branched on a
// non-key stage is never memoized), so the finding is a warning, not an
// error: it marks rules that both defeat leaf-cache hit rate on their
// overlap and would be miswired by any external decision cache (e.g. a
// Tofino-style FIB cache) that keys on the packed fields alone.
//
// A pair (g, f) fires when all of:
//
//   - g is leaf-cacheable: stateless, references only key fields, and
//     forwards to at most pipeline.LeafMaxPorts ports (custom actions
//     and aggregate-refined rules compile to inadmissible leaves, so
//     they can never be cached — itch.rules' avg(price) refinement is
//     the canonical clean overlap);
//   - f is stateless and references at least one non-key packet field;
//   - f's action is not already subsumed by g's (otherwise the hidden
//     delivery is unobservable);
//   - g does not imply f (cover.Implier: otherwise every g-packet
//     matches f and every fill already carries f's action); and
//   - g ∧ f is satisfiable, established by exact per-field domain
//     intersection over the pair's DNF disjuncts — the same
//     single-field-versus-constant argument that makes the BDD
//     builder's pruning exact. The satisfying assignment becomes the
//     finding's counterexample: the packet whose delivery a key-only
//     cache would truncate, serialized for replay.
func checkCacheHiding(sp *spec.Spec, file string, rules []*subscription.Rule, ruleLine map[int]int) []Finding {
	keyFields := pipeline.LeafKeyFields(sp)
	if len(keyFields) == 0 || len(sp.Headers) > 64 {
		return nil // leaf cache inoperative for this spec
	}
	isKey := make(map[*spec.Field]bool, len(keyFields))
	for _, f := range keyFields {
		isKey[f] = true
	}

	type classified struct {
		rule     *subscription.Rule
		disj     []subscription.Conjunction
		nonKey   []*spec.Field
		stateful bool
	}
	cls := make([]classified, 0, len(rules))
	for _, r := range rules {
		c := classified{rule: r}
		nrs, err := subscription.NormalizeRule(r)
		if err != nil {
			continue // already reported as a parse/normalize finding
		}
		seen := make(map[*spec.Field]bool)
		for _, nr := range nrs {
			c.disj = append(c.disj, nr.Conj)
			for _, a := range nr.Conj {
				switch a.Ref.Kind {
				case subscription.AggregateRef:
					c.stateful = true
				case subscription.PacketRef:
					if !isKey[a.Ref.Field] && !seen[a.Ref.Field] {
						seen[a.Ref.Field] = true
						c.nonKey = append(c.nonKey, a.Ref.Field)
					}
				}
			}
		}
		cls = append(cls, c)
	}

	im := cover.NewImplier(sp, 0)
	var out []Finding
	for _, f := range cls {
		if f.stateful || len(f.nonKey) == 0 {
			continue
		}
		var related []int
		var cex *report.Counterexample
		for _, g := range cls {
			if g.rule.ID == f.rule.ID || g.stateful || len(g.nonKey) > 0 {
				continue
			}
			if !g.rule.Action.IsFwd() || len(g.rule.Action.Ports) > pipeline.LeafMaxPorts {
				continue // inadmissible leaf: never cached, cannot hide
			}
			var gSet subscription.ActionSet
			gSet.Add(g.rule.Action)
			if subsumes(gSet, f.rule.Action) {
				continue // hiding would be unobservable
			}
			if im.Implies(g.rule.Filter, f.rule.Filter) {
				continue // every fill from g's region already carries f
			}
			w := overlapWitness(sp, g.disj, f.disj)
			if w == nil {
				continue // disjoint: no shared cache slot to poison
			}
			related = append(related, g.rule.ID)
			if cex == nil {
				cex = w
				var want subscription.ActionSet
				want.Add(g.rule.Action)
				want.Add(f.rule.Action)
				cex.Want = want.String()
				cex.Got = gSet.String()
			}
		}
		if len(related) == 0 {
			continue
		}
		sort.Ints(related)
		names := make([]string, len(f.nonKey))
		for i, fld := range f.nonKey {
			names[i] = fld.QName()
		}
		sort.Strings(names)
		out = append(out, Finding{
			Tool: Tool, File: file, Line: ruleLine[f.rule.ID], RuleID: f.rule.ID,
			Kind: KindCacheHiding, Severity: SevWarning,
			Message: fmt.Sprintf(
				"cache-hiding hazard: rule refines a leaf-cacheable rule on non-key field %s; a decision cache keyed on the packed subscription key would serve the coarse action to packets this rule matches (the dataplane leaf cache refuses to fill these overlaps)",
				strings.Join(names, ", ")),
			RuleText:       f.rule.String(),
			Related:        related,
			Counterexample: cex,
		})
	}
	return out
}

// overlapWitness decides satisfiability of g ∧ f over the pair's DNF
// disjuncts by per-field domain intersection and, when satisfiable,
// concretizes one witness packet. Exactness: every atom constrains a
// single field against a constant, so per-field consistency is global
// consistency. Aggregate atoms cannot occur (callers pre-filter
// stateful rules); a defensive nil is returned if one slips through.
func overlapWitness(sp *spec.Spec, gd, fd []subscription.Conjunction) *report.Counterexample {
	for _, cg := range gd {
		for _, cf := range fd {
			if w := conjWitness(sp, cg, cf); w != nil {
				return w
			}
		}
	}
	return nil
}

func conjWitness(sp *spec.Spec, conjs ...subscription.Conjunction) *report.Counterexample {
	ints := make(map[*spec.Field]prove.IntDomain)
	strs := make(map[*spec.Field]prove.StrDomain)
	presence := make(map[string]bool) // validity-atom demands
	for _, conj := range conjs {
		for _, a := range conj {
			switch a.Ref.Kind {
			case subscription.AggregateRef:
				return nil
			case subscription.ValidityRef:
				want := (a.Rel == subscription.EQ) == (a.Const.Int != 0)
				if have, ok := presence[a.Ref.Header]; ok && have != want {
					return nil
				}
				presence[a.Ref.Header] = want
			case subscription.PacketRef:
				fld := a.Ref.Field
				if fld.Type == spec.IntField {
					cur, ok := ints[fld]
					if !ok {
						cur = prove.IntRange(0, fld.MaxValue())
					}
					cur = cur.Intersect(intRelDom(a.Rel, a.Const.Int, fld.MaxValue()))
					if cur.IsEmpty() {
						return nil
					}
					ints[fld] = cur
				} else {
					cur, ok := strs[fld]
					if !ok {
						cur = prove.StrAll()
					}
					cur = cur.Intersect(strRelDom(a.Rel, a.Const.Str))
					if cur.EmptyFor(fld.Bytes()) {
						return nil
					}
					strs[fld] = cur
				}
			}
		}
	}
	// Constrained fields force their header present; a validity atom
	// demanding that header absent is a contradiction.
	for fld := range ints {
		if have, ok := presence[fld.Header]; ok && !have {
			return nil
		}
		presence[fld.Header] = true
	}
	for fld := range strs {
		if have, ok := presence[fld.Header]; ok && !have {
			return nil
		}
		presence[fld.Header] = true
	}

	cex := &report.Counterexample{Fields: make(map[string]string)}
	values := make(map[string]map[string]spec.Value) // header → field → value
	for fld, d := range ints {
		w, ok := d.Witness()
		if !ok {
			return nil
		}
		cex.Fields[fld.QName()] = spec.IntVal(w).String()
		if values[fld.Header] == nil {
			values[fld.Header] = make(map[string]spec.Value)
		}
		values[fld.Header][fld.Name] = spec.IntVal(w)
	}
	for fld, d := range strs {
		w, ok := d.Witness(fld.Bytes())
		if !ok {
			return nil
		}
		cex.Fields[fld.QName()] = spec.StrVal(w).String()
		if values[fld.Header] == nil {
			values[fld.Header] = make(map[string]spec.Value)
		}
		values[fld.Header][fld.Name] = spec.StrVal(w)
	}

	// Serialize the witness in spec header order so the finding carries
	// a replayable wire packet (unconstrained fields encode as zeros).
	var wire []byte
	for _, h := range sp.Headers {
		if !presence[h.Name] {
			continue
		}
		codec, err := packet.NewHeaderCodec(sp, h.Name)
		if err != nil {
			return nil
		}
		wire, err = codec.Append(wire, values[h.Name])
		if err != nil {
			return nil
		}
		cex.Headers = append(cex.Headers, h.Name)
	}
	cex.Packet = hex.EncodeToString(wire)
	return cex
}

// intRelDom is the set of field values satisfying rel against constant
// c, within the field's [0, max] range.
func intRelDom(rel subscription.Relation, c, max int64) prove.IntDomain {
	switch rel {
	case subscription.EQ:
		return prove.IntPoint(c)
	case subscription.NE:
		return prove.IntRange(0, max).Without(c)
	case subscription.LT:
		if c <= 0 {
			return prove.IntDomain{}
		}
		return prove.IntRange(0, c-1)
	case subscription.LE:
		if c < 0 {
			return prove.IntDomain{}
		}
		return prove.IntRange(0, c)
	case subscription.GT:
		if c >= max {
			return prove.IntDomain{}
		}
		return prove.IntRange(c+1, max)
	case subscription.GE:
		if c > max {
			return prove.IntDomain{}
		}
		return prove.IntRange(c, max)
	}
	return prove.IntDomain{}
}

func strRelDom(rel subscription.Relation, c string) prove.StrDomain {
	switch rel {
	case subscription.EQ:
		return prove.StrExact(c)
	case subscription.NE:
		return prove.StrAll().Subtract(prove.StrExact(c))
	case subscription.PREFIX:
		return prove.StrWithPrefix(c)
	}
	return prove.StrDomain{}
}

package prove_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"camus/internal/analysis/corrupt"
	"camus/internal/analysis/prove"
	"camus/internal/analysis/replay"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// The external test package deliberately imports the compiler: the
// prover itself must not (depguard_test.go), but its tests exercise the
// real compile → export → prove path.

const testSpecSrc = `
header ord_qty {
    shares : u32 @field;
    price : u32 @field;
}
header ord_sym {
    stock : str8 @field_exact;
    name : str16 @field;
}
`

func testSpec(t testing.TB) *spec.Spec {
	t.Helper()
	return spec.MustParse("test", testSpecSrc)
}

func compileRules(t testing.TB, sp *spec.Spec, src string, opts compiler.Options) (*compiler.Program, []*subscription.Rule) {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	p, err := compiler.Compile(sp, rules, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p, rules
}

func proveProgram(t testing.TB, p *compiler.Program, rules []*subscription.Rule, opts prove.Options) *prove.Result {
	t.Helper()
	ir, err := p.ProveIR()
	if err != nil {
		t.Fatalf("ProveIR: %v", err)
	}
	res, err := prove.Check(ir, rules, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

// TestProveCleanPrograms: correctly compiled programs certify clean,
// across filter shapes (ranges, exact strings, prefixes, negation,
// disjunction, multi-header, stateful) and both last-hop settings.
func TestProveCleanPrograms(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		lastHop bool
	}{
		{"fig6", "shares < 100 and stock == GOOGL: fwd(1)\nshares < 100 and stock == GOOGL: fwd(2)\nshares >= 100 and stock == MSFT: fwd(3)", false},
		{"range-overlap", "price > 10 and price < 50: fwd(1)\nprice >= 40: fwd(2)\nprice == 45: fwd(3)", false},
		{"prefix", "name prefix GO: fwd(1)\nname == GOOGL: fwd(2)", false},
		{"negation", "not (shares < 100): fwd(1)\nnot (stock == MSFT) and price > 5: fwd(2)", false},
		{"disjunction", "shares < 10 or shares > 90: fwd(1)\nstock == A or stock == B: fwd(2)", false},
		{"cross-header", "shares > 10 and name == widget: fwd(1)\nprice < 5: fwd(2)", false},
		{"ne", "stock != GOOGL: fwd(1)\nshares != 0: fwd(2)", false},
		{"stateful-upstream", "stock == GOOGL and avg(price) > 60: fwd(1)", false},
		{"stateful-lasthop", "stock == GOOGL and avg(price) > 60: fwd(1)\nstock == GOOGL: fwd(2)", true},
		{"empty", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := testSpec(t)
			p, rules := compileRules(t, sp, tc.src, compiler.Options{LastHop: tc.lastHop})
			res := proveProgram(t, p, rules, prove.Options{LastHop: tc.lastHop})
			if !res.Ok() {
				t.Fatalf("clean program got findings: %+v (overflow=%v)", res.Findings, res.Overflowed)
			}
			if res.Paths == 0 && tc.src != "" {
				t.Error("no symbolic paths explored")
			}
		})
	}
}

// TestProveOptionMismatch: compiling for an upstream switch but proving
// against last-hop semantics (or vice versa) is itself a divergence the
// prover must catch — stateful rules forward supersets upstream.
func TestProveOptionMismatch(t *testing.T) {
	sp := testSpec(t)
	src := "stock == GOOGL and avg(price) > 60: fwd(1)"
	p, rules := compileRules(t, sp, src, compiler.Options{LastHop: false})
	res := proveProgram(t, p, rules, prove.Options{LastHop: true})
	if res.Ok() {
		t.Fatal("upstream-compiled program proved clean under last-hop semantics")
	}
}

// resolveOp turns an adaptive corpus op into a concrete mutation by
// scanning the compiled program, so corpus files survive compiler
// layout changes.
func resolveOp(t *testing.T, p *compiler.Program, op string) corrupt.Mutation {
	t.Helper()
	switch op {
	case "add-leaf-port":
		if len(p.Leaf) == 0 {
			t.Fatal("program has no leaves")
		}
		return corrupt.Mutation{Op: op, Leaf: 0, Port: 99}
	case "remove-leaf-port":
		for i, le := range p.Leaf {
			if len(le.Actions.Ports) > 0 {
				return corrupt.Mutation{Op: op, Leaf: i, Port: le.Actions.Ports[0]}
			}
		}
		t.Fatal("no leaf forwards anywhere")
	case "redirect-entry":
		// Redirect a hit entry onto its in-state's miss path: the matched
		// value now behaves like a miss.
		for si, st := range p.Stages {
			for ei, e := range st.Entries {
				if d, ok := st.Defaults[e.In]; ok && d != e.Out {
					return corrupt.Mutation{Op: op, Stage: si, Entry: ei, Out: d}
				}
			}
		}
		t.Fatal("no redirectable entry")
	case "drop-update":
		// Prefer a pure update leaf (no forwarding): its paths include the
		// statelessly reachable "rest-of-filter matches, stateful predicate
		// undecidable" region, so the divergence replays on the wire.
		// Leaves that both forward and update sit behind a true stateful
		// branch and yield only register-dependent counterexamples.
		best := -1
		for i, le := range p.Leaf {
			if len(le.Updates) == 0 {
				continue
			}
			if best < 0 {
				best = i
			}
			if len(le.Actions.Ports) == 0 {
				return corrupt.Mutation{Op: op, Leaf: i, Key: le.Updates[0]}
			}
		}
		if best >= 0 {
			return corrupt.Mutation{Op: op, Leaf: best, Key: p.Leaf[best].Updates[0]}
		}
		t.Fatal("no leaf updates any register")
	case "add-update":
		// Same reachability concern as drop-update: seed the spurious
		// update on a leaf without updates (typically the drop leaf),
		// which non-matching packets reach with no register involved.
		for i, le := range p.Leaf {
			if len(le.Updates) == 0 {
				return corrupt.Mutation{Op: op, Leaf: i, Key: "avg(ord_qty.shares)"}
			}
		}
		if len(p.Leaf) == 0 {
			t.Fatal("program has no leaves")
		}
		return corrupt.Mutation{Op: op, Leaf: 0, Key: "avg(ord_qty.shares)"}
	default:
		t.Fatalf("unknown corpus op %q", op)
	}
	return corrupt.Mutation{}
}

type corpusEntry struct {
	Name    string   `json:"name"`
	Rules   string   `json:"rules"`
	LastHop bool     `json:"lastHop"`
	Ops     []string `json:"ops"`
	Expect  []string `json:"expect"`
}

func loadCorpus(t *testing.T) []corpusEntry {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	var out []corpusEntry
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var e corpusEntry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		out = append(out, e)
	}
	return out
}

// TestKnownBadCorpus is the golden regression over seeded miscompiled
// programs: every corpus program must yield a confirmed counterexample
// of the expected kind, and every stateless counterexample must
// reproduce the divergence on the real pipeline.Switch via replay.
func TestKnownBadCorpus(t *testing.T) {
	for _, e := range loadCorpus(t) {
		t.Run(e.Name, func(t *testing.T) {
			sp := testSpec(t)
			p, rules := compileRules(t, sp, e.Rules, compiler.Options{LastHop: e.LastHop})
			for _, op := range e.Ops {
				m := resolveOp(t, p, op)
				if err := m.Apply(p); err != nil {
					t.Fatalf("mutation %+v: %v", m, err)
				}
			}
			opts := prove.Options{LastHop: e.LastHop}
			res := proveProgram(t, p, rules, opts)
			if len(res.Findings) == 0 {
				t.Fatal("corrupted program proved clean")
			}
			kinds := map[string]bool{}
			for _, f := range res.Findings {
				kinds[f.Kind] = true
			}
			for _, k := range e.Expect {
				if !kinds[k] {
					t.Errorf("missing expected finding kind %q, got %+v", k, res.Findings)
				}
			}
			replayed := 0
			for _, f := range res.Findings {
				if f.Cex == nil || !f.Cex.Stateless() {
					continue
				}
				out, err := replay.Confirm(sp, p, rules, f.Cex, opts)
				if err != nil {
					t.Fatalf("replay %s: %v", f.Kind, err)
				}
				if !out.Diverges() {
					t.Errorf("%s counterexample does not reproduce on pipeline.Switch: want %s/%v got %s/%v",
						f.Kind, out.Want, out.WantUpdates, out.Got, out.GotUpdates)
				}
				replayed++
			}
			if replayed == 0 {
				t.Error("no stateless counterexample replayed through the pipeline")
			}
		})
	}
}

// TestCounterexampleConcrete: divergence counterexamples evaluate
// differently on the prover's two concrete evaluators, and their Want
// matches the rule-set ground truth.
func TestCounterexampleConcrete(t *testing.T) {
	sp := testSpec(t)
	p, rules := compileRules(t, sp, "shares < 100 and stock == GOOGL: fwd(1)", compiler.Options{})
	if err := (corrupt.Mutation{Op: "remove-leaf-port", Leaf: 0, Port: 1}).Apply(p); err != nil {
		// Leaf 0 may not be the fwd(1) leaf; find it.
		for i, le := range p.Leaf {
			if len(le.Actions.Ports) > 0 {
				if err := (corrupt.Mutation{Op: "remove-leaf-port", Leaf: i, Port: le.Actions.Ports[0]}).Apply(p); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	res := proveProgram(t, p, rules, prove.Options{})
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
	f := res.Findings[0]
	if f.Kind != prove.KindMissingAction || f.Cex == nil {
		t.Fatalf("finding = %+v, want missing-action with counterexample", f)
	}
	want, _, err := prove.EvalRules(rules, prove.Options{}, f.Cex)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(f.Want) {
		t.Errorf("finding Want %s disagrees with ground truth %s", f.Want, want)
	}
	if f.Want.Equal(f.Got) {
		t.Error("counterexample does not diverge")
	}
	// The report envelope renders the counterexample.
	rep := res.Report("test.rules", rules, nil)
	if rep.Tool != "camusc-prove" || !rep.HasErrors() {
		t.Errorf("report: %+v", rep)
	}
	if rep.Findings[0].Counterexample == nil {
		t.Error("report finding lost its counterexample")
	}
}

// TestGroupMismatch: a multi-port leaf whose multicast group does not
// realize its ports is a structural finding.
func TestGroupMismatch(t *testing.T) {
	sp := testSpec(t)
	p, rules := compileRules(t, sp,
		"stock == GOOGL: fwd(1)\nstock == GOOGL: fwd(2)", compiler.Options{})
	ir, err := p.ProveIR()
	if err != nil {
		t.Fatal(err)
	}
	broke := false
	for _, g := range ir.Groups {
		if len(g) == 2 {
			g[1] = 77
			broke = true
		}
	}
	if !broke {
		t.Fatal("expected a two-port multicast group")
	}
	res, err := prove.Check(ir, rules, prove.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range res.Findings {
		if f.Kind == prove.KindGroupMismatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("no group-mismatch finding: %+v", res.Findings)
	}
}

// TestReplayRejectsStateful: register-dependent counterexamples cannot
// be serialized onto the wire.
func TestReplayRejectsStateful(t *testing.T) {
	sp := testSpec(t)
	p, rules := compileRules(t, sp, "stock == GOOGL: fwd(1)", compiler.Options{})
	cex := &prove.Assignment{
		Headers: map[string]bool{"ord_sym": true},
		State:   map[string]int64{"avg(ord_qty.price)": 61},
	}
	if _, err := replay.Confirm(sp, p, rules, cex, prove.Options{}); err == nil {
		t.Fatal("stateful counterexample replayed")
	}
}

// TestEvalAgainstCompiled cross-validates the prover's concrete IR
// evaluator against the compiled program on a value sweep.
func TestEvalAgainstCompiled(t *testing.T) {
	sp := testSpec(t)
	src := "shares < 100 and stock == GOOGL: fwd(1)\nshares >= 100 and stock == MSFT: fwd(3)\nprice > 50: fwd(2)"
	p, _ := compileRules(t, sp, src, compiler.Options{})
	ir, err := p.ProveIR()
	if err != nil {
		t.Fatal(err)
	}
	for _, shares := range []int64{0, 99, 100, 101} {
		for _, price := range []int64{0, 50, 51} {
			for _, stock := range []string{"GOOGL", "MSFT", "X"} {
				m := spec.NewMessage(sp)
				m.MustSet("shares", spec.IntVal(shares))
				m.MustSet("price", spec.IntVal(price))
				m.MustSet("stock", spec.StrVal(stock))
				a := &prove.Assignment{
					Headers: map[string]bool{"ord_qty": true, "ord_sym": true},
					Fields: map[string]spec.Value{
						"ord_qty.shares": spec.IntVal(shares),
						"ord_qty.price":  spec.IntVal(price),
						"ord_sym.stock":  spec.StrVal(stock),
					},
				}
				wantSet := p.Eval(m, nil)
				gotSet, _ := ir.Eval(a)
				if !wantSet.Equal(gotSet) {
					t.Fatalf("shares=%d price=%d stock=%s: compiled %s, IR %s",
						shares, price, stock, wantSet, gotSet)
				}
			}
		}
	}
}

func ExampleCheck() {
	sp := spec.MustParse("test", testSpecSrc)
	rules, _ := subscription.NewParser(sp).ParseRules("shares < 100 and stock == GOOGL: fwd(1)")
	p, _ := compiler.Compile(sp, rules, compiler.Options{})
	ir, _ := p.ProveIR()
	res, _ := prove.Check(ir, rules, prove.Options{})
	fmt.Println(res.Ok())
	// Output: true
}

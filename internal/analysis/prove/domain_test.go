package prove

import (
	"math"
	"testing"
)

func TestIntDomainOps(t *testing.T) {
	d := IntRange(0, 100)
	if d.IsEmpty() || !d.Contains(0) || !d.Contains(100) || d.Contains(101) {
		t.Fatalf("range basics broken: %v", d)
	}
	x := d.Intersect(IntRange(50, 200))
	if !x.Contains(50) || !x.Contains(100) || x.Contains(49) || x.Contains(101) {
		t.Fatalf("intersect: %v", x)
	}
	s := d.Subtract(IntRange(10, 20))
	for _, v := range []int64{9, 21, 0, 100} {
		if !s.Contains(v) {
			t.Errorf("subtract lost %d: %v", v, s)
		}
	}
	for v := int64(10); v <= 20; v++ {
		if s.Contains(v) {
			t.Errorf("subtract kept %d: %v", v, s)
		}
	}
	u := IntRange(0, 4).Union(IntRange(5, 9))
	if len(u.spans) != 1 || !u.Contains(0) || !u.Contains(9) {
		t.Errorf("adjacent union should merge: %v", u)
	}
	if w, ok := s.Witness(); !ok || !s.Contains(w) {
		t.Errorf("witness: %d %v", w, ok)
	}
	if _, ok := IntRange(5, 4).Witness(); ok {
		t.Error("empty domain has witness")
	}
}

func TestIntDomainBoundaries(t *testing.T) {
	full := IntRange(math.MinInt64, math.MaxInt64)
	if d := intRelDomain(relLT, math.MinInt64); !d.IsEmpty() {
		t.Errorf("x < MinInt64 should be empty: %v", d)
	}
	if d := intRelDomain(relGT, math.MaxInt64); !d.IsEmpty() {
		t.Errorf("x > MaxInt64 should be empty: %v", d)
	}
	ne := full.Without(0)
	if ne.Contains(0) || !ne.Contains(math.MinInt64) || !ne.Contains(math.MaxInt64) {
		t.Errorf("without(0): %v", ne)
	}
	// Complement via subtraction round-trips.
	d := intRelDomain(relGE, 10).Intersect(intRelDomain(relLE, 20))
	c := full.Subtract(d)
	for _, v := range []int64{9, 21} {
		if !c.Contains(v) {
			t.Errorf("complement lost %d", v)
		}
	}
	if c.Contains(15) {
		t.Error("complement kept interior point")
	}
	if got := d.Union(c); len(got.spans) != 1 || !got.Contains(math.MinInt64) || !got.Contains(math.MaxInt64) {
		t.Errorf("d ∪ ¬d should be the universe: %v", got)
	}
}

func TestIntRelDomains(t *testing.T) {
	cases := []struct {
		rel relOp
		c   int64
		in  []int64
		out []int64
	}{
		{relEQ, 5, []int64{5}, []int64{4, 6}},
		{relNE, 5, []int64{4, 6}, []int64{5}},
		{relLT, 5, []int64{4, math.MinInt64}, []int64{5, 6}},
		{relLE, 5, []int64{5}, []int64{6}},
		{relGT, 5, []int64{6, math.MaxInt64}, []int64{5}},
		{relGE, 5, []int64{5}, []int64{4}},
		{relPREFIX, 5, nil, []int64{5}}, // int prefix: constant false
	}
	for _, tc := range cases {
		d := intRelDomain(tc.rel, tc.c)
		for _, v := range tc.in {
			if !d.Contains(v) {
				t.Errorf("rel %d const %d should contain %d", tc.rel, tc.c, v)
			}
		}
		for _, v := range tc.out {
			if d.Contains(v) {
				t.Errorf("rel %d const %d should not contain %d", tc.rel, tc.c, v)
			}
		}
	}
}

func TestStrDomainOps(t *testing.T) {
	googl := StrExact("GOOGL")
	if !googl.Contains("GOOGL") || googl.Contains("MSFT") {
		t.Fatal("exact basics")
	}
	px := StrWithPrefix("GO")
	if !px.Contains("GO") || !px.Contains("GOOGL") || px.Contains("AAPL") {
		t.Fatal("prefix basics")
	}
	both := googl.Intersect(px)
	if !both.Contains("GOOGL") || both.Contains("GOOG") {
		t.Fatal("exact ∩ prefix")
	}
	none := googl.Intersect(StrExact("MSFT"))
	if !none.EmptyFor(8) {
		t.Fatal("disjoint exacts should be empty")
	}
	notGoogl := googl.Complement()
	if notGoogl.Contains("GOOGL") || !notGoogl.Contains("MSFT") || !notGoogl.Contains("") {
		t.Fatal("complement of exact")
	}
	notPx := px.Complement()
	if notPx.Contains("GOOGL") || !notPx.Contains("AAPL") {
		t.Fatal("complement of prefix")
	}
	diff := px.Subtract(googl)
	if diff.Contains("GOOGL") || !diff.Contains("GOOG") {
		t.Fatal("prefix minus exact")
	}
}

func TestStrDomainWitness(t *testing.T) {
	if w, ok := StrExact("GOOGL").Witness(8); !ok || w != "GOOGL" {
		t.Fatalf("exact witness: %q %v", w, ok)
	}
	if _, ok := StrExact("TOOLONGNAME").Witness(8); ok {
		t.Error("witness wider than the field")
	}
	// A cofinite set dodges its exclusions.
	d := StrAll().Subtract(StrExact("")).Subtract(StrWithPrefix("A"))
	w, ok := d.Witness(8)
	if !ok || w == "" || w[0] == 'A' || !d.Contains(w) {
		t.Fatalf("cofinite witness: %q %v", w, ok)
	}
	// Witnesses never end in space (wire round-trip).
	px := StrWithPrefix("GO")
	if w, ok := px.Witness(8); !ok || w != "GO" {
		t.Fatalf("prefix witness should be the prefix: %q", w)
	}
	// Exact-width required prefix: only the prefix itself fits.
	tight := StrWithPrefix("ABCDEFGH")
	if w, ok := tight.Witness(8); !ok || w != "ABCDEFGH" {
		t.Fatalf("tight witness: %q %v", w, ok)
	}
	if !tight.Subtract(StrExact("ABCDEFGH")).EmptyFor(8) {
		t.Error("no 8-byte string extends an 8-byte prefix")
	}
}

func TestStrRelDomains(t *testing.T) {
	if d := strRelDomain(relEQ, "X"); !d.Contains("X") || d.Contains("Y") {
		t.Error("strEQ")
	}
	if d := strRelDomain(relNE, "X"); d.Contains("X") || !d.Contains("Y") {
		t.Error("strNE")
	}
	if d := strRelDomain(relPREFIX, "X"); !d.Contains("XY") || d.Contains("Y") {
		t.Error("strPREFIX")
	}
	// Ordering relations over strings are constant-false in the
	// reference semantics.
	if d := strRelDomain(relLT, "X"); !d.EmptyFor(8) {
		t.Error("string LT should denote the empty set")
	}
}

package prove

import (
	"fmt"
	"strings"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// ---------------------------------------------------------------------
// The prover's own denotational semantics for the subscription AST:
// its own relation vocabulary, its own DNF, its own last-hop stateful
// erasure, and its own concrete evaluator. Only the AST node types and
// the spec are shared with the compilation path.
// ---------------------------------------------------------------------

// relOp is the prover's comparison vocabulary.
type relOp int

const (
	relEQ relOp = iota
	relNE
	relLT
	relLE
	relGT
	relGE
	relPREFIX
)

func relOf(r subscription.Relation) (relOp, error) {
	switch r {
	case subscription.EQ:
		return relEQ, nil
	case subscription.NE:
		return relNE, nil
	case subscription.LT:
		return relLT, nil
	case subscription.LE:
		return relLE, nil
	case subscription.GT:
		return relGT, nil
	case subscription.GE:
		return relGE, nil
	case subscription.PREFIX:
		return relPREFIX, nil
	default:
		return 0, fmt.Errorf("prove: unknown relation %v", r)
	}
}

// negate returns the complementary relation; PREFIX has none.
func (r relOp) negate() (relOp, error) {
	switch r {
	case relEQ:
		return relNE, nil
	case relNE:
		return relEQ, nil
	case relLT:
		return relGE, nil
	case relLE:
		return relGT, nil
	case relGT:
		return relLE, nil
	case relGE:
		return relLT, nil
	default:
		return 0, fmt.Errorf("prove: prefix constraints cannot be negated")
	}
}

// atom is one atomic constraint in the prover's vocabulary.
type atom struct {
	ref subscription.FieldRef
	rel relOp
	c   spec.Value
}

// conj is a conjunction of atoms.
type conj []atom

// maxDisjuncts bounds the prover's DNF; beyond it Check reports the
// filter as un-analyzable rather than looping.
const maxDisjuncts = 1 << 14

// dnf is the prover's own disjunctive-normal-form normalization:
// negation pushed to atoms, conjunction distributed over disjunction.
// An empty result is the unsatisfiable filter; a result holding one
// empty conjunction is the constant-true filter.
func dnf(e subscription.Expr, neg bool) ([]conj, error) {
	switch n := e.(type) {
	case *subscription.Bool:
		if n.Value != neg {
			return []conj{{}}, nil
		}
		return nil, nil
	case *subscription.Atom:
		rel, err := relOf(n.Rel)
		if err != nil {
			return nil, err
		}
		if neg {
			if rel, err = rel.negate(); err != nil {
				return nil, err
			}
		}
		return []conj{{atom{ref: n.Ref, rel: rel, c: n.Const}}}, nil
	case *subscription.Not:
		return dnf(n.Term, !neg)
	case *subscription.And:
		if neg {
			return dnfUnion(n.Terms, true)
		}
		return dnfCross(n.Terms, false)
	case *subscription.Or:
		if neg {
			return dnfCross(n.Terms, true)
		}
		return dnfUnion(n.Terms, false)
	default:
		return nil, fmt.Errorf("prove: unknown expression node %T", e)
	}
}

func dnfUnion(terms []subscription.Expr, neg bool) ([]conj, error) {
	var out []conj
	for _, t := range terms {
		ds, err := dnf(t, neg)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
		if len(out) > maxDisjuncts {
			return nil, fmt.Errorf("prove: filter normalization exceeds %d disjuncts", maxDisjuncts)
		}
	}
	return out, nil
}

func dnfCross(terms []subscription.Expr, neg bool) ([]conj, error) {
	out := []conj{{}}
	for _, t := range terms {
		ds, err := dnf(t, neg)
		if err != nil {
			return nil, err
		}
		var next []conj
		for _, base := range out {
			for _, d := range ds {
				merged := make(conj, 0, len(base)+len(d))
				merged = append(merged, base...)
				merged = append(merged, d...)
				next = append(next, merged)
			}
		}
		if len(next) > maxDisjuncts {
			return nil, fmt.Errorf("prove: filter normalization exceeds %d disjuncts", maxDisjuncts)
		}
		out = next
	}
	return out, nil
}

// disjunct is one conjunction of a processed rule, with its stateful
// structure made explicit.
type disjunct struct {
	// atoms is the effective conjunction at this switch: for rules not
	// running at their subscribers' last hop, aggregate atoms have been
	// erased (§II: upstream switches forward a superset and only the
	// last hop evaluates state).
	atoms conj
	// stateless is atoms minus aggregate atoms (equal to atoms for
	// erased rules). The register-update obligation is keyed on it: a
	// packet matching the stateless context must update every aggregate
	// in aggKeys, regardless of the stateful predicates' own outcomes.
	stateless conj
	// aggKeys are the aggregate keys this disjunct must update
	// (last-hop rules only; empty for erased rules).
	aggKeys []string
}

// provedRule is one rule in the prover's processed form.
type provedRule struct {
	id        int
	action    subscription.Action
	lastHop   bool
	disjuncts []disjunct
}

// Options configure a Check run. LastHop and LastHopPort mirror the
// compiler options the program was built with: the prover re-derives
// the same per-rule last-hop decision from the documented policy, so a
// compiler that mis-applies its own options is caught.
type Options struct {
	// LastHop marks the program as running on a host-facing switch.
	LastHop bool
	// LastHopPort, when set, refines LastHop per rule: stateful atoms
	// stay active only if every fwd port of the rule is host-facing.
	LastHopPort func(port int) bool
	// MaxPaths bounds each symbolic exploration of the program
	// (default 50000 contexts).
	MaxPaths int
	// MaxContexts bounds each negative-refinement query in the
	// spurious-action check (default 4096 contexts).
	MaxContexts int
}

func (o Options) withDefaults() Options {
	if o.MaxPaths == 0 {
		o.MaxPaths = 50000
	}
	if o.MaxContexts == 0 {
		o.MaxContexts = 4096
	}
	return o
}

// ruleLastHop is the prover's independent statement of the §II policy
// (compare compiler.ruleIsLastHop): a rule evaluates its stateful
// atoms only on the hop immediately before its subscribers.
func ruleLastHop(act subscription.Action, o Options) bool {
	if o.LastHopPort == nil || len(act.Ports) == 0 {
		return o.LastHop
	}
	for _, p := range act.Ports {
		if !o.LastHopPort(p) {
			return false
		}
	}
	return true
}

// validityAtom is the prover's valid(header) == 1 constraint.
func validityAtom(header string) atom {
	return atom{
		ref: subscription.FieldRef{Kind: subscription.ValidityRef, Header: header},
		rel: relEQ,
		c:   spec.IntVal(1),
	}
}

// processRules normalizes and last-hop-processes a rule set into the
// prover's form.
//
// §VI policy: a rule never matches a packet lacking a header it reads.
// For packet atoms this already follows from the reference semantics
// (an atom on an absent field is false), but an aggregate atom reads
// the current register, not the packet — the policy still demands the
// aggregated field's header be present, so active (last-hop) aggregate
// atoms get an explicit validity conjunct here. Erasure happens first:
// a rule whose aggregates are erased for this switch keeps no claim on
// their headers.
func processRules(rules []*subscription.Rule, o Options) ([]*provedRule, error) {
	out := make([]*provedRule, 0, len(rules))
	for _, r := range rules {
		ds, err := dnf(r.Filter, false)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", r.ID, err)
		}
		pr := &provedRule{id: r.ID, action: r.Action, lastHop: ruleLastHop(r.Action, o)}
		for _, d := range ds {
			var stateless conj
			var aggKeys []string
			var aggHeaders []string
			for _, at := range d {
				if at.ref.Kind == subscription.AggregateRef {
					aggKeys = append(aggKeys, at.ref.Key())
					if at.ref.Field != nil && !containsStr(aggHeaders, at.ref.Field.Header) {
						aggHeaders = append(aggHeaders, at.ref.Field.Header)
					}
				} else {
					stateless = append(stateless, at)
				}
			}
			pd := disjunct{stateless: stateless}
			if pr.lastHop {
				pd.atoms = make(conj, 0, len(aggHeaders)+len(d))
				for _, h := range aggHeaders {
					pd.atoms = append(pd.atoms, validityAtom(h))
				}
				pd.atoms = append(pd.atoms, d...)
				pd.aggKeys = aggKeys
			} else {
				pd.atoms = stateless
			}
			pr.disjuncts = append(pr.disjuncts, pd)
		}
		out = append(out, pr)
	}
	return out, nil
}

// compareVal is the prover's concrete comparison semantics, mirroring
// the language definition: mismatched kinds never compare; strings
// support equality and prefix only; integers support everything but
// prefix.
func compareVal(v spec.Value, rel relOp, c spec.Value) bool {
	if v.Kind != c.Kind {
		return false
	}
	if v.Kind == spec.StringField {
		switch rel {
		case relEQ:
			return v.Str == c.Str
		case relNE:
			return v.Str != c.Str
		case relPREFIX:
			return strings.HasPrefix(v.Str, c.Str)
		default:
			return false
		}
	}
	switch rel {
	case relEQ:
		return v.Int == c.Int
	case relNE:
		return v.Int != c.Int
	case relLT:
		return v.Int < c.Int
	case relLE:
		return v.Int <= c.Int
	case relGT:
		return v.Int > c.Int
	case relGE:
		return v.Int >= c.Int
	default:
		return false
	}
}

// eval evaluates an atom concretely: a constraint on an absent field is
// false regardless of relation.
func (at atom) eval(a *Assignment) bool {
	v, present := a.value(at.ref)
	if !present {
		return false
	}
	return compareVal(v, at.rel, at.c)
}

func (c conj) eval(a *Assignment) bool {
	for _, at := range c {
		if !at.eval(a) {
			return false
		}
	}
	return true
}

// evalRules is the prover's ground truth for an assignment: the merged
// action set of every matching processed rule plus the update keys its
// stateless contexts trigger.
func evalRules(rules []*provedRule, a *Assignment) (subscription.ActionSet, []string) {
	var set subscription.ActionSet
	updates := make(map[string]bool)
	for _, r := range rules {
		for _, d := range r.disjuncts {
			if d.atoms.eval(a) {
				set.Add(r.action)
			}
			if len(d.aggKeys) > 0 && d.stateless.eval(a) {
				for _, k := range d.aggKeys {
					updates[k] = true
				}
			}
		}
	}
	return set, sortedKeys(updates)
}

// EvalRules is the exported ground truth: the merged action set and
// update keys the rule set owes an assignment under the same last-hop
// options a Check run would use. Replay harnesses compare it against
// the real pipeline.
func EvalRules(rules []*subscription.Rule, o Options, a *Assignment) (subscription.ActionSet, []string, error) {
	prs, err := processRules(rules, o.withDefaults())
	if err != nil {
		return subscription.ActionSet{}, nil, err
	}
	set, upd := evalRules(prs, a)
	return set, upd, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// subsumes reports whether the merged action set already carries every
// effect of act under the §V-D forwarding merge: all fwd ports
// present; custom actions present by exact key. The empty fwd() (drop)
// is subsumed by anything.
func subsumes(set subscription.ActionSet, act subscription.Action) bool {
	if act.IsFwd() {
		for _, p := range act.Ports {
			if !containsInt(set.Ports, p) {
				return false
			}
		}
		return true
	}
	key := act.Key()
	for _, c := range set.Custom {
		if c.Key() == key {
			return true
		}
	}
	return false
}

func containsInt(sorted []int, v int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

package prove

import (
	"camus/internal/spec"
	"camus/internal/subscription"
)

// tri is three-valued header presence.
type tri int8

const (
	triUnknown tri = iota
	triYes
	triNo
)

// pctx is a symbolic packet context: for every header a presence
// tri-state, for every subscribable field the set of values it may
// still take, and for every aggregate the set of register values.
// Atoms constrain single fields against constants, so per-field
// consistency is global consistency: a pctx with no empty domain and
// no presence contradiction is satisfiable, and concretize() always
// succeeds on one. Maps store only refined knowledge; absent keys mean
// "unconstrained". Contexts are persistent: refinement clones.
type pctx struct {
	headers map[string]tri
	ints    map[string]IntDomain // field qname → value set
	strs    map[string]StrDomain // field qname → value set
	aggs    map[string]IntDomain // aggregate key → value set
}

func newCtx() *pctx {
	return &pctx{
		headers: map[string]tri{},
		ints:    map[string]IntDomain{},
		strs:    map[string]StrDomain{},
		aggs:    map[string]IntDomain{},
	}
}

func (c *pctx) clone() *pctx {
	n := &pctx{
		headers: make(map[string]tri, len(c.headers)),
		ints:    make(map[string]IntDomain, len(c.ints)),
		strs:    make(map[string]StrDomain, len(c.strs)),
		aggs:    make(map[string]IntDomain, len(c.aggs)),
	}
	for k, v := range c.headers {
		n.headers[k] = v
	}
	for k, v := range c.ints {
		n.ints[k] = v
	}
	for k, v := range c.strs {
		n.strs[k] = v
	}
	for k, v := range c.aggs {
		n.aggs[k] = v
	}
	return n
}

func (c *pctx) intDom(f *spec.Field) IntDomain {
	if d, ok := c.ints[f.QName()]; ok {
		return d
	}
	return fieldIntDomain(f)
}

func (c *pctx) strDom(f *spec.Field) StrDomain {
	if d, ok := c.strs[f.QName()]; ok {
		return d
	}
	return StrAll()
}

func (c *pctx) aggDom(key string) IntDomain {
	if d, ok := c.aggs[key]; ok {
		return d
	}
	return fullInt
}

// withPresence returns the context with header h's presence set, or
// nil on contradiction.
func (c *pctx) withPresence(h string, present bool) *pctx {
	want := triNo
	if present {
		want = triYes
	}
	cur := c.headers[h]
	if cur == want {
		return c
	}
	if cur != triUnknown {
		return nil
	}
	n := c.clone()
	n.headers[h] = want
	return n
}

// withIntDom returns the context with field f's domain replaced, or
// nil if the domain is empty. It does not touch presence.
func (c *pctx) withIntDom(f *spec.Field, d IntDomain) *pctx {
	if d.IsEmpty() {
		return nil
	}
	n := c.clone()
	n.ints[f.QName()] = d
	return n
}

func (c *pctx) withStrDom(f *spec.Field, d StrDomain) *pctx {
	if d.EmptyFor(f.Bytes()) {
		return nil
	}
	n := c.clone()
	n.strs[f.QName()] = d
	return n
}

func (c *pctx) withAggDom(key string, d IntDomain) *pctx {
	if d.IsEmpty() {
		return nil
	}
	n := c.clone()
	n.aggs[key] = d
	return n
}

// validityBits returns which bit values of "valid(h)" satisfy rel c.
func validityBits(rel relOp, cv spec.Value) (zero, one bool) {
	if cv.Kind != spec.IntField {
		return false, false
	}
	d := intRelDomain(rel, cv.Int)
	return d.Contains(0), d.Contains(1)
}

// refineAtomTrue returns the context refined by "atom holds", or nil
// when unsatisfiable. Per the reference semantics an atom on an absent
// field is false, so a packet-field atom holding forces its header
// present.
func refineAtomTrue(c *pctx, at atom) *pctx {
	switch at.ref.Kind {
	case subscription.AggregateRef:
		if at.c.Kind != spec.IntField {
			return nil
		}
		key := at.ref.Key()
		return c.withAggDom(key, c.aggDom(key).Intersect(intRelDomain(at.rel, at.c.Int)))
	case subscription.ValidityRef:
		zero, one := validityBits(at.rel, at.c)
		h := at.ref.Header
		switch {
		case zero && one:
			return c
		case one:
			return c.withPresence(h, true)
		case zero:
			return c.withPresence(h, false)
		default:
			return nil
		}
	default: // PacketRef
		f := at.ref.Field
		if f.Type == spec.StringField {
			if at.c.Kind != spec.StringField {
				return nil
			}
			d := c.strDom(f).Intersect(strRelDomain(at.rel, at.c.Str))
			if d.EmptyFor(f.Bytes()) {
				return nil
			}
			n := c.withPresence(f.Header, true)
			if n == nil {
				return nil
			}
			return n.withStrDom(f, d)
		}
		if at.c.Kind != spec.IntField {
			return nil
		}
		d := c.intDom(f).Intersect(intRelDomain(at.rel, at.c.Int))
		if d.IsEmpty() {
			return nil
		}
		n := c.withPresence(f.Header, true)
		if n == nil {
			return nil
		}
		return n.withIntDom(f, d)
	}
}

// refineAtomFalse returns the contexts covering "atom does not hold":
// for a packet-field atom either the header is absent or the value
// falls outside the relation; for validity/aggregate atoms the value
// side only (those operands always exist).
func refineAtomFalse(c *pctx, at atom) []*pctx {
	switch at.ref.Kind {
	case subscription.AggregateRef:
		if at.c.Kind != spec.IntField {
			return []*pctx{c} // constant-false atom: its negation is free
		}
		key := at.ref.Key()
		if n := c.withAggDom(key, c.aggDom(key).Subtract(intRelDomain(at.rel, at.c.Int))); n != nil {
			return []*pctx{n}
		}
		return nil
	case subscription.ValidityRef:
		zero, one := validityBits(at.rel, at.c)
		h := at.ref.Header
		var out []*pctx
		if !one { // bit 1 falsifies the atom
			if n := c.withPresence(h, true); n != nil {
				out = append(out, n)
			}
		}
		if !zero {
			if n := c.withPresence(h, false); n != nil {
				out = append(out, n)
			}
		}
		if zero && one {
			return nil // atom true for both bit values: negation unsat
		}
		return out
	default: // PacketRef
		f := at.ref.Field
		var valueBranch *pctx
		if f.Type == spec.StringField {
			if at.c.Kind != spec.StringField {
				return []*pctx{c}
			}
			d := c.strDom(f).Subtract(strRelDomain(at.rel, at.c.Str))
			if !d.EmptyFor(f.Bytes()) {
				if n := c.withPresence(f.Header, true); n != nil {
					valueBranch = n.withStrDom(f, d)
				}
			}
		} else {
			if at.c.Kind != spec.IntField {
				return []*pctx{c}
			}
			d := c.intDom(f).Subtract(intRelDomain(at.rel, at.c.Int))
			if !d.IsEmpty() {
				if n := c.withPresence(f.Header, true); n != nil {
					valueBranch = n.withIntDom(f, d)
				}
			}
		}
		var out []*pctx
		if absent := c.withPresence(f.Header, false); absent != nil {
			out = append(out, absent)
		}
		if valueBranch != nil {
			out = append(out, valueBranch)
		}
		return out
	}
}

// refineConjTrue refines by every atom of a conjunction, or nil.
func refineConjTrue(c *pctx, atoms conj) *pctx {
	for _, at := range atoms {
		if c = refineAtomTrue(c, at); c == nil {
			return nil
		}
	}
	return c
}

// refineConjFalse returns disjoint contexts covering "conjunction does
// not hold": for each i, atoms 0..i-1 hold and atom i does not.
func refineConjFalse(c *pctx, atoms conj) []*pctx {
	if len(atoms) == 0 {
		return nil // the empty conjunction is true: negation unsat
	}
	var out []*pctx
	cur := c
	for _, at := range atoms {
		out = append(out, refineAtomFalse(cur, at)...)
		if cur = refineAtomTrue(cur, at); cur == nil {
			break
		}
	}
	return out
}

// refineFilterFalse refines by the negation of a whole processed rule
// filter (no disjunct holds). budget caps the context fan-out; it
// returns ok=false when exhausted (the query is then inconclusive).
func refineFilterFalse(c *pctx, r *provedRule, budget int) (out []*pctx, ok bool) {
	ctxs := []*pctx{c}
	for _, d := range r.disjuncts {
		var next []*pctx
		for _, x := range ctxs {
			next = append(next, refineConjFalse(x, d.atoms)...)
			if len(next) > budget {
				return nil, false
			}
		}
		ctxs = next
		if len(ctxs) == 0 {
			break
		}
	}
	return ctxs, true
}

// concretize extracts a concrete assignment from a satisfiable
// context: headers with presence triYes are present (unconstrained
// headers stay absent), every constrained field takes a witness from
// its domain, every constrained aggregate likewise.
func (c *pctx) concretize(sp *spec.Spec) (*Assignment, bool) {
	a := &Assignment{
		Headers: map[string]bool{},
		Fields:  map[string]spec.Value{},
		State:   map[string]int64{},
	}
	for h, t := range c.headers {
		if t == triYes {
			a.Headers[h] = true
		}
	}
	for q, d := range c.ints {
		f, ok := sp.Field(q)
		if !ok {
			return nil, false
		}
		if !a.Headers[f.Header] {
			continue // field of an absent header: value irrelevant
		}
		w, ok := d.Witness()
		if !ok {
			return nil, false
		}
		a.Fields[q] = spec.IntVal(w)
	}
	for q, d := range c.strs {
		f, ok := sp.Field(q)
		if !ok {
			return nil, false
		}
		if !a.Headers[f.Header] {
			continue
		}
		w, ok := d.Witness(f.Bytes())
		if !ok {
			return nil, false
		}
		a.Fields[q] = spec.StrVal(w)
	}
	for k, d := range c.aggs {
		w, ok := d.Witness()
		if !ok {
			return nil, false
		}
		if w != 0 {
			a.State[k] = w
		}
	}
	return a, true
}

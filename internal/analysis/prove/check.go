package prove

import (
	"fmt"
	"sort"
	"strings"

	"camus/internal/analysis/report"
	"camus/internal/subscription"
)

// Finding kinds reported by Check.
const (
	// KindMissingAction: a packet satisfying a rule's filter reaches a
	// leaf whose action set does not subsume the rule's action.
	KindMissingAction = "missing-action"
	// KindSpuriousAction: a leaf fires an action (port or custom) that
	// no matching rule justifies for some packet reaching it.
	KindSpuriousAction = "spurious-action"
	// KindMissingUpdate: a packet matching a stateful rule's stateless
	// context reaches a leaf that does not update the rule's aggregate.
	KindMissingUpdate = "missing-update"
	// KindSpuriousUpdate: a leaf updates an aggregate no rule's
	// stateless context justifies for some packet reaching it.
	KindSpuriousUpdate = "spurious-update"
	// KindGroupMismatch: a leaf's multicast group does not realize its
	// port set.
	KindGroupMismatch = "group-mismatch"
	// KindOverflow: a symbolic budget was exhausted; the proof is
	// partial.
	KindOverflow = "analysis-overflow"
)

// Finding is one prover diagnostic. Divergence findings carry a
// concrete counterexample that has been re-checked by the prover's own
// concrete evaluators (evalRules vs Program.Eval) before being
// reported.
type Finding struct {
	Kind    string
	RuleID  int // -1 for table-level findings
	Related []int
	Message string
	// Cex is the witness assignment (nil for structural/overflow
	// findings). Want/Got are the diverging outcomes: the independent
	// AST semantics vs the compiled program.
	Cex         *Assignment
	Want, Got   subscription.ActionSet
	WantUpdates []string
	GotUpdates  []string
}

// Result is the outcome of a Check run.
type Result struct {
	Findings []Finding
	// Paths counts symbolically explored pipeline paths.
	Paths int
	// Overflowed reports that some budget was exhausted: a clean
	// finding list then means "no divergence found", not "proved".
	Overflowed bool
}

// Ok reports a complete, divergence-free proof.
func (r *Result) Ok() bool { return len(r.Findings) == 0 && !r.Overflowed }

// Check proves the compiled program equivalent to the rule set, per
// rule and modulo the §V-D forwarding merge:
//
//   - completeness: every packet satisfying rule R's filter (as this
//     switch must interpret it — stateful atoms erased unless last
//     hop) reaches a leaf whose action set subsumes R's action, and
//     every packet matching a stateful R's stateless context reaches
//     a leaf updating R's aggregates;
//   - soundness: no leaf fires a port, custom action or register
//     update that no matching rule justifies.
//
// Every divergence is witnessed by a concrete assignment verified
// against both of the prover's concrete evaluators before being
// reported.
func Check(p *Program, rules []*subscription.Rule, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	proved, err := processRules(rules, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	chk := &checker{p: p, rules: proved, opts: opts, res: res}

	chk.checkGroups()
	chk.checkMissing()
	chk.checkSpurious()

	sort.SliceStable(res.Findings, func(i, j int) bool {
		if res.Findings[i].RuleID != res.Findings[j].RuleID {
			return res.Findings[i].RuleID < res.Findings[j].RuleID
		}
		return res.Findings[i].Kind < res.Findings[j].Kind
	})
	return res, nil
}

type checker struct {
	p     *Program
	rules []*provedRule
	opts  Options
	res   *Result
}

func (c *checker) overflow(what string) {
	if !c.res.Overflowed {
		c.res.Findings = append(c.res.Findings, Finding{
			Kind: KindOverflow, RuleID: -1,
			Message: fmt.Sprintf("symbolic budget exhausted during %s; proof is partial", what),
		})
	}
	c.res.Overflowed = true
}

// confirm re-checks a candidate divergence concretely and, if real,
// records the finding. Returns whether the finding was confirmed.
func (c *checker) confirm(kind string, ruleID int, related []int, a *Assignment, msg string) bool {
	want, wantUpd := evalRules(c.rules, a)
	got, gotUpd := c.p.Eval(a)
	if want.Equal(got) && strings.Join(wantUpd, ",") == strings.Join(gotUpd, ",") {
		// The symbolic candidate does not reproduce concretely — a
		// prover-side approximation artifact, not a program bug. Never
		// report an unconfirmed counterexample.
		return false
	}
	c.res.Findings = append(c.res.Findings, Finding{
		Kind: kind, RuleID: ruleID, Related: related, Message: msg,
		Cex: a, Want: want, Got: got, WantUpdates: wantUpd, GotUpdates: gotUpd,
	})
	return true
}

// checkGroups validates the multicast allocation structurally: every
// multi-port leaf must reference a group realizing exactly its ports.
func (c *checker) checkGroups() {
	for _, l := range c.p.Leaves {
		if len(l.Actions.Ports) <= 1 {
			continue
		}
		ok := l.Group >= 0 && l.Group < len(c.p.Groups) &&
			equalInts(c.p.Groups[l.Group], l.Actions.Ports)
		if !ok {
			c.res.Findings = append(c.res.Findings, Finding{
				Kind: KindGroupMismatch, RuleID: -1,
				Message: fmt.Sprintf("leaf state %d forwards to ports %v but its multicast group (%d) does not realize them",
					l.In, l.Actions.Ports, l.Group),
			})
		}
	}
}

// checkMissing proves completeness rule by rule: restrict the initial
// context to one disjunct of the rule's filter, execute the program
// under it, and demand every reachable leaf subsume the rule's action
// (and carry its update keys, for last-hop stateful rules).
func (c *checker) checkMissing() {
	for _, r := range c.rules {
		flagged := map[string]bool{}
		for _, d := range r.disjuncts {
			if !flagged[KindMissingAction] {
				if cc := refineConjTrue(newCtx(), d.atoms); cc != nil {
					paths, ov := c.p.explore(cc, c.opts.MaxPaths)
					if ov {
						c.overflow(fmt.Sprintf("completeness check of rule %d", r.id))
					}
					c.res.Paths += len(paths)
					for _, pr := range paths {
						var acts subscription.ActionSet
						if pr.leaf != nil {
							acts = pr.leaf.Actions
						}
						if subsumes(acts, r.action) {
							continue
						}
						if a, ok := pr.c.concretize(c.p.Spec); ok &&
							c.confirm(KindMissingAction, r.id, nil, a,
								fmt.Sprintf("a packet matching this filter reaches a leaf that does not perform %s", r.action)) {
							flagged[KindMissingAction] = true
							break
						}
					}
				}
			}
			if len(d.aggKeys) > 0 && !flagged[KindMissingUpdate] {
				if cc := refineConjTrue(newCtx(), d.stateless); cc != nil {
					paths, ov := c.p.explore(cc, c.opts.MaxPaths)
					if ov {
						c.overflow(fmt.Sprintf("update check of rule %d", r.id))
					}
					c.res.Paths += len(paths)
				scan:
					for _, pr := range paths {
						for _, k := range d.aggKeys {
							if pr.leaf != nil && containsStr(pr.leaf.Updates, k) {
								continue
							}
							if a, ok := pr.c.concretize(c.p.Spec); ok &&
								c.confirm(KindMissingUpdate, r.id, nil, a,
									fmt.Sprintf("a packet matching this rule's stateless context reaches a leaf that does not update %s", k)) {
								flagged[KindMissingUpdate] = true
								break scan
							}
						}
					}
				}
			}
		}
	}
}

// checkSpurious proves soundness leaf by leaf: execute the whole
// program unconstrained and, for every action a reached leaf fires,
// demand that the packets reaching it cannot all evade the rules
// justifying that action.
func (c *checker) checkSpurious() {
	paths, ov := c.p.explore(newCtx(), c.opts.MaxPaths)
	if ov {
		c.overflow("soundness sweep")
	}
	c.res.Paths += len(paths)

	type item struct {
		state int32
		what  string
	}
	done := map[item]bool{}
	for _, pr := range paths {
		if pr.leaf == nil {
			continue
		}
		l := pr.leaf
		for _, q := range l.Actions.Ports {
			key := item{l.In, fmt.Sprintf("port %d", q)}
			if done[key] {
				continue
			}
			contributors := c.portRules(q)
			if ruleIDs, a := c.unjustified(pr.c, contributors); a != nil {
				if c.confirm(KindSpuriousAction, -1, ruleIDs, a,
					fmt.Sprintf("leaf state %d forwards to port %d for a packet no rule routes there", l.In, q)) {
					done[key] = true
				}
			}
		}
		for _, act := range l.Actions.Custom {
			key := item{l.In, "custom " + act.Key()}
			if done[key] {
				continue
			}
			contributors := c.customRules(act.Key())
			if ruleIDs, a := c.unjustified(pr.c, contributors); a != nil {
				if c.confirm(KindSpuriousAction, -1, ruleIDs, a,
					fmt.Sprintf("leaf state %d fires %s for a packet no rule justifies", l.In, act)) {
					done[key] = true
				}
			}
		}
		for _, k := range l.Updates {
			key := item{l.In, "update " + k}
			if done[key] {
				continue
			}
			if ruleIDs, a := c.unjustifiedUpdate(pr.c, k); a != nil {
				if c.confirm(KindSpuriousUpdate, -1, ruleIDs, a,
					fmt.Sprintf("leaf state %d updates %s for a packet no stateful rule's context justifies", l.In, k)) {
					done[key] = true
				}
			}
		}
	}
}

// portRules returns the rules that forward to port q.
func (c *checker) portRules(q int) []*provedRule {
	var out []*provedRule
	for _, r := range c.rules {
		if r.action.IsFwd() && containsInt(r.action.Ports, q) {
			out = append(out, r)
		}
	}
	return out
}

// customRules returns the rules carrying the custom action key.
func (c *checker) customRules(key string) []*provedRule {
	var out []*provedRule
	for _, r := range c.rules {
		if !r.action.IsFwd() && r.action.Key() == key {
			out = append(out, r)
		}
	}
	return out
}

// unjustified refines the path context by the negation of every
// contributor's filter; a surviving context witnesses a packet that
// reaches the leaf yet matches none of the rules justifying the
// action. Returns the contributor IDs and a concrete witness, or nil.
func (c *checker) unjustified(pc *pctx, contributors []*provedRule) ([]int, *Assignment) {
	ids := make([]int, 0, len(contributors))
	ctxs := []*pctx{pc}
	for _, r := range contributors {
		ids = append(ids, r.id)
		var next []*pctx
		for _, x := range ctxs {
			more, ok := refineFilterFalse(x, r, c.opts.MaxContexts)
			if !ok {
				c.overflow("negative refinement")
				return nil, nil
			}
			next = append(next, more...)
			if len(next) > c.opts.MaxContexts {
				c.overflow("negative refinement")
				return nil, nil
			}
		}
		ctxs = next
		if len(ctxs) == 0 {
			return nil, nil
		}
	}
	sort.Ints(ids)
	for _, x := range ctxs {
		if a, ok := x.concretize(c.p.Spec); ok {
			return ids, a
		}
	}
	return nil, nil
}

// unjustifiedUpdate is unjustified for register updates: the negated
// obligations are the stateless contexts of every last-hop stateful
// disjunct aggregating into key k.
func (c *checker) unjustifiedUpdate(pc *pctx, k string) ([]int, *Assignment) {
	idSet := map[int]bool{}
	ctxs := []*pctx{pc}
	for _, r := range c.rules {
		for _, d := range r.disjuncts {
			if !containsStr(d.aggKeys, k) {
				continue
			}
			idSet[r.id] = true
			var next []*pctx
			for _, x := range ctxs {
				next = append(next, refineConjFalse(x, d.stateless)...)
				if len(next) > c.opts.MaxContexts {
					c.overflow("negative refinement")
					return nil, nil
				}
			}
			ctxs = next
			if len(ctxs) == 0 {
				return nil, nil
			}
		}
	}
	ids := make([]int, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, x := range ctxs {
		if a, ok := x.concretize(c.p.Spec); ok {
			return ids, a
		}
	}
	return nil, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsStr(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// Report converts the result to the shared diagnostic envelope.
// ruleLine maps rule IDs to 1-based source lines (may be nil).
func (r *Result) Report(file string, rules []*subscription.Rule, ruleLine map[int]int) *report.Report {
	byID := make(map[int]*subscription.Rule, len(rules))
	for _, ru := range rules {
		byID[ru.ID] = ru
	}
	rep := &report.Report{Tool: "camusc-prove", File: file, Rules: len(rules)}
	for _, f := range r.Findings {
		rf := report.Finding{
			Tool: "camusc-prove", File: file, RuleID: f.RuleID,
			Kind: report.Kind(f.Kind), Severity: report.SevError,
			Message: f.Message, Related: f.Related,
		}
		if f.Kind == KindOverflow {
			rf.Severity = report.SevWarning
		}
		if ru := byID[f.RuleID]; ru != nil {
			rf.RuleText = ru.String()
			rf.Line = ruleLine[f.RuleID]
		}
		if f.Cex != nil {
			rf.Counterexample = f.ReportCex()
		}
		rep.Findings = append(rep.Findings, rf)
	}
	return rep
}

// ReportCex renders the finding's counterexample into the envelope
// form (without the wire bytes; callers that replay the witness fill
// Packet and Confirmed).
func (f *Finding) ReportCex() *report.Counterexample {
	if f.Cex == nil {
		return nil
	}
	cex := &report.Counterexample{
		Want: describeOutcome(f.Want, f.WantUpdates),
		Got:  describeOutcome(f.Got, f.GotUpdates),
	}
	for h, p := range f.Cex.Headers {
		if p {
			cex.Headers = append(cex.Headers, h)
		}
	}
	sort.Strings(cex.Headers)
	if len(f.Cex.Fields) > 0 {
		cex.Fields = make(map[string]string, len(f.Cex.Fields))
		for q, v := range f.Cex.Fields {
			cex.Fields[q] = v.String()
		}
	}
	if len(f.Cex.State) > 0 {
		cex.State = make(map[string]int64, len(f.Cex.State))
		for k, v := range f.Cex.State {
			cex.State[k] = v
		}
	}
	return cex
}

func describeOutcome(set subscription.ActionSet, updates []string) string {
	s := set.Key()
	if len(updates) > 0 {
		s += " updates" + fmt.Sprint(updates)
	}
	return s
}

package prove

import (
	"camus/internal/spec"
	"camus/internal/subscription"
)

// pathResult is one complete symbolic execution of the pipeline: the
// accumulated path constraint and the leaf reached (nil = drop with no
// leaf row).
type pathResult struct {
	c    *pctx
	leaf *Leaf
}

// explore symbolically executes the program as a decision DAG from an
// initial context, branching at every stage on the entry domains, the
// residual value region (values no entry covers — domain pruning means
// entries need not partition the field) and header absence. It mirrors
// Table.Next exactly: first matching entry wins; a miss takes the
// stage default; states outside the stage pass through.
//
// Returns the completed paths and whether the budget was exhausted
// (in which case the path list is partial).
func (p *Program) explore(c0 *pctx, budget int) ([]pathResult, bool) {
	type frame struct {
		stage int
		state int32
		c     *pctx
	}
	stack := []frame{{0, p.Init, c0}}
	var out []pathResult
	overflow := false
	for len(stack) > 0 {
		if budget <= 0 {
			overflow = true
			break
		}
		budget--
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.stage >= len(p.Stages) {
			out = append(out, pathResult{c: fr.c, leaf: p.leafByState[fr.state]})
			continue
		}
		st := p.Stages[fr.stage]
		entries, in := st.byState[fr.state]
		if !in {
			// Pass-through: the state does not enter this stage.
			stack = append(stack, frame{fr.stage + 1, fr.state, fr.c})
			continue
		}
		missOut := fr.state
		if d, ok := st.Defaults[fr.state]; ok {
			missOut = d
		}
		push := func(c *pctx, state int32) {
			if c != nil {
				stack = append(stack, frame{fr.stage + 1, state, c})
			}
		}
		switch st.Ref.Kind {
		case subscription.ValidityRef:
			// The validity bit always exists; its value is the header's
			// presence. For each feasible bit, the first entry containing
			// it wins, otherwise the default.
			h := st.Ref.Header
			for _, bit := range []int64{1, 0} {
				c := fr.c.withPresence(h, bit == 1)
				if c == nil {
					continue
				}
				next := missOut
				for _, e := range entries {
					if e.Int.Contains(bit) {
						next = e.Out
						break
					}
				}
				push(c, next)
			}
		case subscription.AggregateRef:
			// Aggregates always exist. First-match-wins over the entry
			// list, then the residual region to the default.
			key := st.Ref.Key()
			remaining := fr.c.aggDom(key)
			for _, e := range entries {
				hit := remaining.Intersect(e.Int)
				if !hit.IsEmpty() {
					push(fr.c.withAggDom(key, hit), e.Out)
				}
				remaining = remaining.Subtract(e.Int)
				if remaining.IsEmpty() {
					break
				}
			}
			if !remaining.IsEmpty() {
				push(fr.c.withAggDom(key, remaining), missOut)
			}
		default: // PacketRef
			f := st.Ref.Field
			h := f.Header
			if present := fr.c.withPresence(h, true); present != nil {
				if f.Type == spec.StringField {
					remaining := present.strDom(f)
					for _, e := range entries {
						hit := remaining.Intersect(e.Str)
						if !hit.EmptyFor(f.Bytes()) {
							push(present.withStrDom(f, hit), e.Out)
						}
						remaining = remaining.Subtract(e.Str)
						if remaining.EmptyFor(f.Bytes()) {
							break
						}
					}
					if !remaining.EmptyFor(f.Bytes()) {
						push(present.withStrDom(f, remaining), missOut)
					}
				} else {
					remaining := present.intDom(f)
					for _, e := range entries {
						hit := remaining.Intersect(e.Int)
						if !hit.IsEmpty() {
							push(present.withIntDom(f, hit), e.Out)
						}
						remaining = remaining.Subtract(e.Int)
						if remaining.IsEmpty() {
							break
						}
					}
					if !remaining.IsEmpty() {
						push(present.withIntDom(f, remaining), missOut)
					}
				}
			}
			// Header absent: every predicate false, take the default.
			push(fr.c.withPresence(h, false), missOut)
		}
	}
	return out, overflow
}

package prove_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestNoCompilerDependency is the depguard for the prover's
// independence claim: the package under test must not depend — directly
// or transitively — on the BDD engine it validates, nor on the compiler
// or its match-constraint vocabulary. (This external test package does;
// `go list -deps` excludes test dependencies.)
func TestNoCompilerDependency(t *testing.T) {
	out, err := exec.Command("go", "list", "-deps", "camus/internal/analysis/prove").CombinedOutput()
	if err != nil {
		t.Fatalf("go list -deps: %v\n%s", err, out)
	}
	deps := strings.Fields(string(out))
	forbidden := map[string]string{
		"camus/internal/bdd":      "the engine under validation",
		"camus/internal/match":    "the compiler's constraint vocabulary",
		"camus/internal/compiler": "the translation under validation",
	}
	for _, d := range deps {
		if why, bad := forbidden[d]; bad {
			t.Errorf("prove depends on %s (%s) — independence broken", d, why)
		}
	}
}

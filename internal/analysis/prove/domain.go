package prove

import (
	"fmt"
	"math"
	"strings"

	"camus/internal/spec"
)

// ---------------------------------------------------------------------
// Integer domains: finite unions of disjoint closed intervals.
// ---------------------------------------------------------------------

// span is one closed interval [lo, hi], lo <= hi.
type span struct{ lo, hi int64 }

// IntDomain is a set of int64 values: sorted, disjoint, non-adjacent
// closed intervals. The zero value is the empty set. IntDomain values
// are immutable; all operations return new domains.
type IntDomain struct {
	spans []span
}

// IntRange returns the domain [lo, hi] (empty when lo > hi).
func IntRange(lo, hi int64) IntDomain {
	if lo > hi {
		return IntDomain{}
	}
	return IntDomain{spans: []span{{lo, hi}}}
}

// IntPoint returns the singleton domain {v}.
func IntPoint(v int64) IntDomain { return IntRange(v, v) }

// fullInt is the universe of aggregate values.
var fullInt = IntRange(math.MinInt64, math.MaxInt64)

// IsEmpty reports whether the domain contains no value.
func (d IntDomain) IsEmpty() bool { return len(d.spans) == 0 }

// Contains reports whether v is in the domain.
func (d IntDomain) Contains(v int64) bool {
	for _, s := range d.spans {
		if v < s.lo {
			return false
		}
		if v <= s.hi {
			return true
		}
	}
	return false
}

// Witness returns the smallest element, preferring a non-negative one
// when the domain has any (packet fields are unsigned; aggregate
// witnesses read better non-negative).
func (d IntDomain) Witness() (int64, bool) {
	if d.IsEmpty() {
		return 0, false
	}
	for _, s := range d.spans {
		if s.hi >= 0 {
			if s.lo >= 0 {
				return s.lo, true
			}
			return 0, true
		}
	}
	return d.spans[0].lo, true
}

// Intersect returns d ∩ o.
func (d IntDomain) Intersect(o IntDomain) IntDomain {
	var out []span
	i, j := 0, 0
	for i < len(d.spans) && j < len(o.spans) {
		a, b := d.spans[i], o.spans[j]
		lo, hi := a.lo, a.hi
		if b.lo > lo {
			lo = b.lo
		}
		if b.hi < hi {
			hi = b.hi
		}
		if lo <= hi {
			out = append(out, span{lo, hi})
		}
		if a.hi < b.hi {
			i++
		} else {
			j++
		}
	}
	return IntDomain{spans: out}
}

// Union returns d ∪ o.
func (d IntDomain) Union(o IntDomain) IntDomain {
	merged := make([]span, 0, len(d.spans)+len(o.spans))
	i, j := 0, 0
	for i < len(d.spans) || j < len(o.spans) {
		var next span
		if j >= len(o.spans) || (i < len(d.spans) && d.spans[i].lo <= o.spans[j].lo) {
			next = d.spans[i]
			i++
		} else {
			next = o.spans[j]
			j++
		}
		if n := len(merged); n > 0 && adjacentOrOverlap(merged[n-1], next) {
			if next.hi > merged[n-1].hi {
				merged[n-1].hi = next.hi
			}
		} else {
			merged = append(merged, next)
		}
	}
	return IntDomain{spans: merged}
}

func adjacentOrOverlap(a, b span) bool {
	if b.lo <= a.hi {
		return true
	}
	return a.hi != math.MaxInt64 && b.lo == a.hi+1
}

// Subtract returns d \ o.
func (d IntDomain) Subtract(o IntDomain) IntDomain {
	var out []span
	for _, s := range d.spans {
		rest := []span{s}
		for _, x := range o.spans {
			var next []span
			for _, r := range rest {
				if x.hi < r.lo || x.lo > r.hi {
					next = append(next, r)
					continue
				}
				if x.lo > r.lo {
					next = append(next, span{r.lo, x.lo - 1})
				}
				if x.hi < r.hi {
					next = append(next, span{x.hi + 1, r.hi})
				}
			}
			rest = next
		}
		out = append(out, rest...)
	}
	return IntDomain{spans: out}
}

// Without returns the domain with the single point v removed.
func (d IntDomain) Without(v int64) IntDomain { return d.Subtract(IntPoint(v)) }

// relDomain returns the set of int64 values standing in the given
// relation to constant c: the denotation of "x rel c" over integers.
func intRelDomain(rel relOp, c int64) IntDomain {
	switch rel {
	case relEQ:
		return IntPoint(c)
	case relNE:
		return fullInt.Without(c)
	case relLT:
		if c == math.MinInt64 {
			return IntDomain{}
		}
		return IntRange(math.MinInt64, c-1)
	case relLE:
		return IntRange(math.MinInt64, c)
	case relGT:
		if c == math.MaxInt64 {
			return IntDomain{}
		}
		return IntRange(c+1, math.MaxInt64)
	case relGE:
		return IntRange(c, math.MaxInt64)
	default:
		// PREFIX over integers: the reference semantics
		// (subscription.Compare) has no integer prefix case and
		// evaluates it false, so the denotation is the empty set.
		return IntDomain{}
	}
}

func (d IntDomain) String() string {
	if d.IsEmpty() {
		return "∅"
	}
	var b strings.Builder
	for i, s := range d.spans {
		if i > 0 {
			b.WriteByte('|')
		}
		if s.lo == s.hi {
			fmt.Fprintf(&b, "{%d}", s.lo)
		} else {
			fmt.Fprintf(&b, "[%d,%d]", s.lo, s.hi)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// String domains: finite unions of literals, each either one exact
// value or a cofinite prefix set (all strings with a required prefix,
// minus finitely many exact values and prefixes). The family is closed
// under intersection, union, and complement, which is all the prover
// needs; emptiness and witness extraction are decided by bounded
// search below the field's byte width.
// ---------------------------------------------------------------------

// strLit is one literal of a StrDomain.
type strLit struct {
	exact   string
	isExact bool
	// Cofinite form: every string with prefix required, except the
	// exact values exclEq and the prefixes exclPx.
	required string
	exclEq   []string
	exclPx   []string
}

// StrDomain is a set of strings. The zero value is the empty set.
// Literals may overlap; the domain denotes their union.
type StrDomain struct {
	lits []strLit
}

// StrAll is the domain of all strings.
func StrAll() StrDomain { return StrDomain{lits: []strLit{{}}} }

// StrExact returns the singleton domain {s}.
func StrExact(s string) StrDomain {
	return StrDomain{lits: []strLit{{exact: s, isExact: true}}}
}

// StrWithPrefix returns the domain of strings with the given prefix.
func StrWithPrefix(p string) StrDomain {
	return StrDomain{lits: []strLit{{required: p}}}
}

// StrCofinite returns the domain of strings with prefix required minus
// the given exact values and prefixes (the exporter's entry point for
// match.StrConstraint residues).
func StrCofinite(required string, exclEq, exclPx []string) StrDomain {
	return StrDomain{lits: []strLit{{
		required: required,
		exclEq:   append([]string(nil), exclEq...),
		exclPx:   append([]string(nil), exclPx...),
	}}}
}

func (l strLit) contains(s string) bool {
	if l.isExact {
		return s == l.exact
	}
	if !strings.HasPrefix(s, l.required) {
		return false
	}
	for _, e := range l.exclEq {
		if s == e {
			return false
		}
	}
	for _, p := range l.exclPx {
		if strings.HasPrefix(s, p) {
			return false
		}
	}
	return true
}

// Contains reports whether s is in the domain.
func (d StrDomain) Contains(s string) bool {
	for _, l := range d.lits {
		if l.contains(s) {
			return true
		}
	}
	return false
}

// Intersect returns d ∩ o, distributing over the literal unions.
func (d StrDomain) Intersect(o StrDomain) StrDomain {
	var out []strLit
	for _, a := range d.lits {
		for _, b := range o.lits {
			if l, ok := intersectLits(a, b); ok {
				out = append(out, l)
			}
		}
	}
	return StrDomain{lits: out}
}

func intersectLits(a, b strLit) (strLit, bool) {
	if a.isExact {
		if b.contains(a.exact) {
			return a, true
		}
		return strLit{}, false
	}
	if b.isExact {
		if a.contains(b.exact) {
			return b, true
		}
		return strLit{}, false
	}
	// Both cofinite: the required prefixes must nest.
	req := a.required
	if len(b.required) > len(req) {
		req = b.required
	}
	if !strings.HasPrefix(req, a.required) || !strings.HasPrefix(req, b.required) {
		return strLit{}, false
	}
	out := strLit{required: req}
	out.exclEq = append(append([]string(nil), a.exclEq...), b.exclEq...)
	out.exclPx = append(append([]string(nil), a.exclPx...), b.exclPx...)
	return out, true
}

// Union returns d ∪ o.
func (d StrDomain) Union(o StrDomain) StrDomain {
	return StrDomain{lits: append(append([]strLit(nil), d.lits...), o.lits...)}
}

// Complement returns the set of all strings not in the domain.
func (d StrDomain) Complement() StrDomain {
	out := StrAll()
	for _, l := range d.lits {
		out = out.Intersect(complementLit(l))
	}
	return out
}

func complementLit(l strLit) StrDomain {
	if l.isExact {
		return StrCofinite("", []string{l.exact}, nil)
	}
	// ¬(prefix(required) ∧ ∉exclEq ∧ no exclPx prefix)
	//   = ¬prefix(required) ∨ ∈exclEq ∨ some exclPx prefix.
	var out StrDomain
	if l.required != "" {
		out = out.Union(StrCofinite("", nil, []string{l.required}))
	}
	for _, e := range l.exclEq {
		out = out.Union(StrExact(e))
	}
	for _, p := range l.exclPx {
		out = out.Union(StrWithPrefix(p))
	}
	return out
}

// Subtract returns d \ o.
func (d StrDomain) Subtract(o StrDomain) StrDomain {
	return d.Intersect(o.Complement())
}

// strRelDomain returns the denotation of "x rel c" over strings, per
// the reference semantics (subscription.Compare): only EQ, NE and
// PREFIX compare strings; every other relation evaluates false.
func strRelDomain(rel relOp, c string) StrDomain {
	switch rel {
	case relEQ:
		return StrExact(c)
	case relNE:
		return StrCofinite("", []string{c}, nil)
	case relPREFIX:
		return StrWithPrefix(c)
	default:
		return StrDomain{}
	}
}

// witnessAlphabet orders the characters tried when extending a prefix
// to escape exclusions; ASCII printables that survive the wire
// round-trip (spec.StrVal trims trailing spaces and NULs).
const witnessAlphabet = "AB0CDEFGHIJKLMNOPQRSTUVWXYZ123456789"

// Witness returns a string in the domain representable by a width-byte
// field: at most maxBytes long and with no trailing space or NUL (such
// strings do not survive the wire round-trip). The search is bounded
// but, for the exclusion-list sizes the compiler produces (tens), it
// is exhaustive in practice: a two-character extension already offers
// more candidates than any exclusion list can block.
func (d StrDomain) Witness(maxBytes int) (string, bool) {
	for _, l := range d.lits {
		if s, ok := l.witness(maxBytes); ok {
			return s, true
		}
	}
	return "", false
}

func (l strLit) witness(maxBytes int) (string, bool) {
	fits := func(s string) bool {
		return len(s) <= maxBytes && s == strings.TrimRight(s, " \x00") && l.contains(s)
	}
	if l.isExact {
		if fits(l.exact) {
			return l.exact, true
		}
		return "", false
	}
	if fits(l.required) {
		return l.required, true
	}
	// Extend the required prefix by up to three characters.
	free := maxBytes - len(l.required)
	if free <= 0 {
		return "", false
	}
	for _, c1 := range witnessAlphabet {
		s1 := l.required + string(c1)
		if fits(s1) {
			return s1, true
		}
	}
	if free >= 2 {
		for _, c1 := range witnessAlphabet {
			for _, c2 := range witnessAlphabet {
				s2 := l.required + string(c1) + string(c2)
				if fits(s2) {
					return s2, true
				}
			}
		}
	}
	if free >= 3 {
		for _, c1 := range witnessAlphabet {
			for _, c2 := range witnessAlphabet {
				for _, c3 := range witnessAlphabet {
					s3 := l.required + string(c1) + string(c2) + string(c3)
					if fits(s3) {
						return s3, true
					}
				}
			}
		}
	}
	return "", false
}

// EmptyFor reports whether the domain has no witness representable in a
// width-byte field. This is the prover's working notion of emptiness:
// the value space is exactly the strings a packet can carry.
func (d StrDomain) EmptyFor(maxBytes int) bool {
	_, ok := d.Witness(maxBytes)
	return !ok
}

func (d StrDomain) String() string {
	if len(d.lits) == 0 {
		return "∅"
	}
	parts := make([]string, len(d.lits))
	for i, l := range d.lits {
		if l.isExact {
			parts[i] = fmt.Sprintf("%q", l.exact)
		} else {
			var b strings.Builder
			fmt.Fprintf(&b, "^%q", l.required)
			for _, e := range l.exclEq {
				fmt.Fprintf(&b, "∖%q", e)
			}
			for _, p := range l.exclPx {
				fmt.Fprintf(&b, "∖^%q", p)
			}
			parts[i] = b.String()
		}
	}
	return strings.Join(parts, "∪")
}

// fieldIntDomain is the full value domain of an integer packet field.
func fieldIntDomain(f *spec.Field) IntDomain { return IntRange(0, f.MaxValue()) }

// Package prove is a translation validator for compiled Camus rule
// programs: it checks that the match-action tables the BDD compiler
// emits (§V, Algorithm 2) forward exactly the packets each
// subscription filter matches, using a second implementation that
// shares nothing with the compilation path.
//
// Independence is the point. The existing verifier
// (internal/analysis/rulecheck) re-queries the same internal/bdd
// engine that compiled the program, so a compiler bug and its
// "verification" share one implementation. This package instead
//
//   - gives the subscription AST its own denotational semantics over
//     per-field abstract domains — integer interval unions and
//     exact/cofinite string sets, bounded by the spec's field widths —
//     with its own DNF normalization and its own last-hop stateful
//     erasure (mirroring the documented §II policy, not the compiler's
//     code);
//   - symbolically executes the compiled program as a decision DAG
//     over a neutral IR (Program below), collecting per-leaf path
//     constraints and merged action sets; and
//   - proves per-rule equivalence in both directions, modulo the §V-D
//     forwarding merge: every packet satisfying rule R reaches a leaf
//     whose action set subsumes R's action, and no leaf fires an
//     action no matching rule justifies.
//
// Any disequivalence yields a concrete counterexample: a full field
// assignment whose divergence is re-checked concretely inside this
// package and which callers (camusc prove, internal/analysis/replay)
// serialize via internal/packet and replay through pipeline.Switch.
//
// The package must not import internal/bdd, internal/match or
// internal/compiler, directly or transitively — a depguard test
// enforces this. The compiler exports programs into this IR
// (compiler.Program.ProveIR); internal/spec and internal/subscription
// are the shared language definition and are trusted.
package prove

import (
	"fmt"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// Program is the prover's neutral view of a compiled switch program:
// the decision DAG of compiler.Program (Stages/Leaf/Groups/Init)
// re-expressed with the prover's own value domains.
type Program struct {
	Spec *spec.Spec
	// Init is the pipeline entry state.
	Init int32
	// Stages in pipeline order.
	Stages []*Stage
	// Leaves are the terminal rows: state → merged action set.
	Leaves []*Leaf
	// Groups are the allocated multicast port sets, indexed by group ID.
	Groups [][]int

	leafByState map[int32]*Leaf
}

// Stage is one match-action table: every entry predicates on the one
// value named by Ref.
type Stage struct {
	// Ref identifies the value matched: a packet field, a header
	// validity bit, or a stateful aggregate.
	Ref subscription.FieldRef
	// Entries in match priority order: for one in-state, the first
	// entry whose domain contains the value wins (compiled entries
	// normally partition the domain, but capacity-bounded constraint
	// loosening can make a residual entry overlap earlier ones).
	Entries []*Entry
	// Defaults maps an in-state to the next state taken when the value
	// is absent or matches no entry (the BDD lo-walk). States absent
	// from Defaults pass through unchanged.
	Defaults map[int32]int32

	byState map[int32][]*Entry
}

// Entry is one table row: (in-state, value domain) → out-state.
// Exactly one of Int/Str is valid, matching Ref's value type.
type Entry struct {
	In  int32
	Int IntDomain
	Str StrDomain
	Out int32
}

// Leaf is one terminal row: reaching state → merged actions.
type Leaf struct {
	In      int32
	Actions subscription.ActionSet
	// Group is the multicast group realizing the port set, -1 for
	// unicast/drop.
	Group int
	// Updates lists the aggregate keys whose registers this terminal
	// updates.
	Updates []string
}

// Finalize indexes the program after construction; it must be called
// (once) before Check or Eval. The compiler's exporter calls it.
func (p *Program) Finalize() {
	p.leafByState = make(map[int32]*Leaf, len(p.Leaves))
	for _, l := range p.Leaves {
		p.leafByState[l.In] = l
	}
	for _, st := range p.Stages {
		st.byState = make(map[int32][]*Entry)
		for _, e := range st.Entries {
			st.byState[e.In] = append(st.byState[e.In], e)
		}
	}
}

// Assignment is a concrete packet model: which headers are present,
// what each present subscribable field holds, and the aggregate
// register values. It is both the prover's counterexample currency and
// the input to its two concrete evaluators.
type Assignment struct {
	// Headers maps header name → present.
	Headers map[string]bool
	// Fields maps qualified field name → value (present headers only).
	Fields map[string]spec.Value
	// State maps aggregate key → register value.
	State map[string]int64
}

// Stateless reports whether the assignment needs no aggregate state.
func (a *Assignment) Stateless() bool { return len(a.State) == 0 }

// Message materializes the assignment as a spec.Message.
func (a *Assignment) Message(sp *spec.Spec) (*spec.Message, error) {
	m := spec.NewMessage(sp)
	for _, h := range sp.Headers {
		if !a.Headers[h.Name] {
			continue
		}
		m.MarkHeader(h.Name)
		for _, f := range h.Fields {
			if !f.Subscribable {
				continue
			}
			v, ok := a.Fields[f.QName()]
			if !ok {
				// Unconstrained field of a present header: zero value.
				if f.Type == spec.StringField {
					v = spec.StrVal("")
				} else {
					v = spec.IntVal(0)
				}
			}
			if err := m.Set(f.QName(), v); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// MapState returns the aggregate state as a subscription.StateReader.
func (a *Assignment) MapState() subscription.MapState {
	st := make(subscription.MapState, len(a.State))
	for k, v := range a.State {
		st[k] = v
	}
	return st
}

// value reads the stage's operand from the assignment, mirroring
// compiler.Program.Lookup's presence rules: validity bits and
// aggregates are always present; packet fields only when their header
// is. (On wire packets field presence and header presence coincide:
// packet.Decode sets every subscribable field of a decoded header.)
func (a *Assignment) value(ref subscription.FieldRef) (spec.Value, bool) {
	switch ref.Kind {
	case subscription.ValidityRef:
		bit := int64(0)
		if a.Headers[ref.Header] {
			bit = 1
		}
		return spec.IntVal(bit), true
	case subscription.AggregateRef:
		return spec.IntVal(a.State[ref.Key()]), true
	default: // PacketRef
		if !a.Headers[ref.Field.Header] {
			return spec.Value{}, false
		}
		if v, ok := a.Fields[ref.Field.QName()]; ok {
			return v, true
		}
		if ref.Field.Type == spec.StringField {
			return spec.StrVal(""), true
		}
		return spec.IntVal(0), true
	}
}

func (e *Entry) matches(v spec.Value) bool {
	if v.Kind == spec.StringField {
		return e.Str.Contains(v.Str)
	}
	return e.Int.Contains(v.Int)
}

// Eval executes the IR concretely for an assignment — the prover's own
// software model of the compiled pipeline, used to re-check every
// symbolic counterexample before it is reported. It returns the merged
// action set and update keys (empty action set = drop).
func (p *Program) Eval(a *Assignment) (subscription.ActionSet, []string) {
	state := p.Init
	for _, st := range p.Stages {
		entries, in := st.byState[state]
		if !in {
			// Pass-through: the state does not enter this stage. (The
			// compiled Table.Next has the same rule and never consults
			// Defaults for such states.)
			continue
		}
		v, present := a.value(st.Ref)
		next, matched := state, false
		if present {
			for _, e := range entries {
				if e.matches(v) {
					next, matched = e.Out, true
					break
				}
			}
		}
		if !matched {
			if d, ok := st.Defaults[state]; ok {
				next = d
			}
		}
		state = next
	}
	if l := p.leafByState[state]; l != nil {
		upd := append([]string(nil), l.Updates...)
		sortStrings(upd)
		return l.Actions.Clone(), upd
	}
	return subscription.ActionSet{}, nil
}

// String renders the IR for debugging.
func (p *Program) String() string {
	s := fmt.Sprintf("prove IR: init=%d, %d stages, %d leaves\n", p.Init, len(p.Stages), len(p.Leaves))
	for _, st := range p.Stages {
		s += fmt.Sprintf("  stage %s: %d entries, %d defaults\n", st.Ref.Key(), len(st.Entries), len(st.Defaults))
	}
	return s
}

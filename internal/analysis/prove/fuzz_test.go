package prove_test

import (
	"fmt"
	"strings"
	"testing"

	"camus/internal/analysis/prove"
	"camus/internal/compiler"
	"camus/internal/subscription"
)

// byteReader drives the structured generator from fuzz input.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

var (
	fuzzIntRels  = []string{"==", "!=", "<", "<=", ">", ">="}
	fuzzStrRels  = []string{"==", "!=", "prefix"}
	fuzzIntConst = []int{0, 1, 60, 100, 1000}
	fuzzSyms     = []string{"GOOGL", "MSFT", "GO", "A"}
)

// genRules derives a small rule program from fuzz bytes: 1–4 rules,
// each 1–3 atoms over every field shape the language has (int ranges,
// exact strings, prefixes, negation, aggregates), mixed and/or.
func genRules(data []byte) string {
	r := &byteReader{data: data}
	var b strings.Builder
	nRules := 1 + int(r.next())%4
	for i := 0; i < nRules; i++ {
		nAtoms := 1 + int(r.next())%3
		var atoms []string
		for j := 0; j < nAtoms; j++ {
			switch r.next() % 6 {
			case 0:
				atoms = append(atoms, fmt.Sprintf("shares %s %d",
					fuzzIntRels[int(r.next())%len(fuzzIntRels)],
					fuzzIntConst[int(r.next())%len(fuzzIntConst)]))
			case 1:
				atoms = append(atoms, fmt.Sprintf("price %s %d",
					fuzzIntRels[int(r.next())%len(fuzzIntRels)],
					fuzzIntConst[int(r.next())%len(fuzzIntConst)]))
			case 2:
				atoms = append(atoms, "stock == "+fuzzSyms[int(r.next())%len(fuzzSyms)])
			case 3:
				atoms = append(atoms, fmt.Sprintf("name %s %s",
					fuzzStrRels[int(r.next())%len(fuzzStrRels)],
					fuzzSyms[int(r.next())%len(fuzzSyms)]))
			case 4:
				atoms = append(atoms, fmt.Sprintf("avg(price) %s %d",
					fuzzIntRels[int(r.next())%len(fuzzIntRels)],
					fuzzIntConst[int(r.next())%len(fuzzIntConst)]))
			default:
				atoms = append(atoms, fmt.Sprintf("not (shares %s %d)",
					fuzzIntRels[int(r.next())%len(fuzzIntRels)],
					fuzzIntConst[int(r.next())%len(fuzzIntConst)]))
			}
		}
		for j, a := range atoms {
			if j > 0 {
				if r.next()%3 == 0 {
					b.WriteString(" or ")
				} else {
					b.WriteString(" and ")
				}
			}
			b.WriteString(a)
		}
		fmt.Fprintf(&b, ": fwd(%d)\n", 1+int(r.next())%4)
	}
	return b.String()
}

// FuzzCompileProve is the compiler/prover differential fuzzer: any rule
// set that compiles must prove clean (a finding means either a
// miscompilation or a prover semantics gap — both are bugs). Seeds
// live in testdata/fuzz/FuzzCompileProve and run as plain tests in
// every `go test`; `make fuzz-smoke` mutates briefly, nightly CI runs
// the extended budget.
func FuzzCompileProve(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{1, 1, 0, 0, 2, 2, 0}, false)
	f.Add([]byte{3, 2, 4, 3, 1, 2, 1, 0, 5, 1, 2}, true)
	f.Add([]byte{2, 2, 2, 0, 3, 2, 1, 5, 0, 4, 1, 1, 2, 2, 0, 1}, true)
	f.Add([]byte{0, 1, 3, 0, 1, 4, 2, 2, 5, 5, 4, 4, 3, 3, 2, 2, 1, 1, 0}, false)
	f.Fuzz(func(t *testing.T, data []byte, lastHop bool) {
		src := genRules(data)
		sp := testSpec(t)
		rules, err := subscription.NewParser(sp).ParseRules(src)
		if err != nil {
			t.Skip() // generator can emit rejected shapes (e.g. negated prefix)
		}
		p, err := compiler.Compile(sp, rules, compiler.Options{LastHop: lastHop})
		if err != nil {
			t.Skip()
		}
		ir, err := p.ProveIR()
		if err != nil {
			t.Fatalf("ProveIR failed on compiled program:\n%s\n%v", src, err)
		}
		res, err := prove.Check(ir, rules, prove.Options{LastHop: lastHop, MaxPaths: 20000})
		if err != nil {
			t.Skip() // un-analyzable filter (DNF budget)
		}
		if res.Overflowed {
			t.Skip()
		}
		if len(res.Findings) > 0 {
			t.Fatalf("compiled program failed its proof\nrules:\n%s\nfindings: %+v", src, res.Findings)
		}
	})
}

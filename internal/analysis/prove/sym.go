package prove

import (
	"sort"
	"strings"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// This file is the exported symbolic façade over the prover's cube
// machinery, built for network-wide analysis
// (internal/analysis/netcheck): a Class is a satisfiable packet cube
// that can be pushed through a switch program (Explore), refined by a
// subscription filter (Matcher), intersected, subtracted, and finally
// concretized into a witness packet. Classes additionally carry
// *frozen* register constraints: aggregate registers are private to
// one switch, so when a class crosses a link the current switch's
// register constraints are moved into a namespace-qualified frozen map
// ("s3|my_counter(price)" → domain) where later switches cannot touch
// them but satisfiability still accounts for them — a program that
// forwards only under some register state stays distinguishable from
// one that forwards unconditionally.

// Class is a satisfiable symbolic packet class. The zero value is
// invalid; start from NewClass (the unconstrained class covering every
// packet) and derive via the refinement methods, all of which return
// nil for the empty class. Invariant: a non-nil Class is satisfiable —
// per-field consistency is global consistency (see pctx) and the
// frozen domains are checked non-empty at every step.
type Class struct {
	c      *pctx
	frozen map[string]IntDomain
}

// NewClass returns the unconstrained class: every packet, any register
// state on every switch.
func NewClass() *Class { return &Class{c: newCtx()} }

func cloneFrozen(m map[string]IntDomain) map[string]IntDomain {
	n := make(map[string]IntDomain, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

// Freeze moves the class's current-switch register constraints into
// the frozen map under namespace ns (conventionally "s<switchID>"),
// leaving the working register space unconstrained for the next
// switch. Revisiting a namespace intersects with the previously frozen
// domains (same physical registers); nil on contradiction.
func (cl *Class) Freeze(ns string) *Class {
	n := &Class{c: cl.c, frozen: cloneFrozen(cl.frozen)}
	if len(cl.c.aggs) == 0 {
		return n
	}
	nc := cl.c.clone()
	for k, d := range nc.aggs {
		qk := ns + "|" + k
		if prev, ok := n.frozen[qk]; ok {
			d = d.Intersect(prev)
		}
		if d.IsEmpty() {
			return nil
		}
		n.frozen[qk] = d
	}
	nc.aggs = map[string]IntDomain{}
	n.c = nc
	return n
}

// Key renders the class canonically — equal keys mean equal classes.
// Used for cycle detection on the class×switch graph.
func (cl *Class) Key() string {
	var b strings.Builder
	writeSorted := func(prefix string, keys []string, val func(string) string) {
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(prefix)
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(val(k))
			b.WriteByte(';')
		}
	}
	hk := make([]string, 0, len(cl.c.headers))
	for k := range cl.c.headers {
		hk = append(hk, k)
	}
	writeSorted("h:", hk, func(k string) string {
		if cl.c.headers[k] == triYes {
			return "1"
		}
		return "0"
	})
	ik := make([]string, 0, len(cl.c.ints))
	for k := range cl.c.ints {
		ik = append(ik, k)
	}
	writeSorted("i:", ik, func(k string) string { return cl.c.ints[k].String() })
	sk := make([]string, 0, len(cl.c.strs))
	for k := range cl.c.strs {
		sk = append(sk, k)
	}
	writeSorted("s:", sk, func(k string) string { return cl.c.strs[k].String() })
	ak := make([]string, 0, len(cl.c.aggs))
	for k := range cl.c.aggs {
		ak = append(ak, k)
	}
	writeSorted("a:", ak, func(k string) string { return cl.c.aggs[k].String() })
	fk := make([]string, 0, len(cl.frozen))
	for k := range cl.frozen {
		fk = append(fk, k)
	}
	writeSorted("f:", fk, func(k string) string { return cl.frozen[k].String() })
	return b.String()
}

// Concretize extracts a witness packet. Register witnesses prefer zero
// (a fresh switch's registers), so counterexamples replay on a cold
// dataplane whenever the class admits it; non-zero register witnesses
// land in Assignment.State under ns-qualified keys ("<ns>|<aggkey>")
// for the current switch and the frozen keys verbatim, marking the
// counterexample stateful (not wire-replayable).
func (cl *Class) Concretize(sp *spec.Spec, ns string) (*Assignment, bool) {
	c := cl.c
	if len(c.aggs) > 0 {
		c = c.clone()
		for k, d := range c.aggs {
			if d.Contains(0) {
				c.aggs[k] = IntPoint(0)
			}
		}
	}
	a, ok := c.concretize(sp)
	if !ok {
		return nil, false
	}
	if ns != "" && len(a.State) > 0 {
		q := make(map[string]int64, len(a.State))
		for k, v := range a.State {
			q[ns+"|"+k] = v
		}
		a.State = q
	}
	for k, d := range cl.frozen {
		if d.Contains(0) {
			continue
		}
		w, ok := d.Witness()
		if !ok {
			return nil, false
		}
		a.State[k] = w
	}
	return a, true
}

// Intersect returns the conjunction of two classes, nil when empty.
// Current-switch register constraints of both operands are assumed to
// refer to the same switch.
func (cl *Class) Intersect(o *Class, sp *spec.Spec) *Class {
	c := cl.c.clone()
	for h, t := range o.c.headers {
		if cur, ok := c.headers[h]; ok {
			if cur != t {
				return nil
			}
			continue
		}
		c.headers[h] = t
	}
	for q, d := range o.c.ints {
		f, ok := sp.Field(q)
		if !ok {
			return nil
		}
		x := c.intDom(f).Intersect(d)
		if x.IsEmpty() {
			return nil
		}
		c.ints[q] = x
	}
	for q, d := range o.c.strs {
		f, ok := sp.Field(q)
		if !ok {
			return nil
		}
		x := c.strDom(f).Intersect(d)
		if x.EmptyFor(f.Bytes()) {
			return nil
		}
		c.strs[q] = x
	}
	for k, d := range o.c.aggs {
		x := c.aggDom(k).Intersect(d)
		if x.IsEmpty() {
			return nil
		}
		c.aggs[k] = x
	}
	frozen := cloneFrozen(cl.frozen)
	for k, d := range o.frozen {
		if prev, ok := frozen[k]; ok {
			d = d.Intersect(prev)
		}
		if d.IsEmpty() {
			return nil
		}
		frozen[k] = d
	}
	return &Class{c: c, frozen: frozen}
}

func (cl *Class) frozenDom(k string) IntDomain {
	if d, ok := cl.frozen[k]; ok {
		return d
	}
	return fullInt
}

// Minus returns disjoint classes covering cl ∧ ¬o (the standard cube
// subtraction: walk o's constraint components in canonical order; at
// each step emit "prefix holds, this component fails"). The result is
// empty exactly when o covers cl.
func (cl *Class) Minus(o *Class, sp *spec.Spec) []*Class {
	var out []*Class
	cur := cl
	emit := func(c *pctx, frozen map[string]IntDomain) {
		if c != nil {
			if frozen == nil {
				frozen = cur.frozen
			}
			out = append(out, &Class{c: c, frozen: frozen})
		}
	}
	// Header presence components first: field-domain components below
	// assume their header's presence component has already been applied
	// (pctx invariant: a constrained field's header is present).
	hk := make([]string, 0, len(o.c.headers))
	for k := range o.c.headers {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, h := range hk {
		want := o.c.headers[h] == triYes
		emit(cur.c.withPresence(h, !want), nil)
		n := cur.c.withPresence(h, want)
		if n == nil {
			return out
		}
		cur = &Class{c: n, frozen: cur.frozen}
	}
	ik := make([]string, 0, len(o.c.ints))
	for k := range o.c.ints {
		ik = append(ik, k)
	}
	sort.Strings(ik)
	for _, q := range ik {
		f, ok := sp.Field(q)
		if !ok {
			return out
		}
		d := o.c.ints[q]
		emit(cur.c.withIntDom(f, cur.c.intDom(f).Subtract(d)), nil)
		n := cur.c.withIntDom(f, cur.c.intDom(f).Intersect(d))
		if n == nil {
			return out
		}
		cur = &Class{c: n, frozen: cur.frozen}
	}
	sk := make([]string, 0, len(o.c.strs))
	for k := range o.c.strs {
		sk = append(sk, k)
	}
	sort.Strings(sk)
	for _, q := range sk {
		f, ok := sp.Field(q)
		if !ok {
			return out
		}
		d := o.c.strs[q]
		emit(cur.c.withStrDom(f, cur.c.strDom(f).Subtract(d)), nil)
		n := cur.c.withStrDom(f, cur.c.strDom(f).Intersect(d))
		if n == nil {
			return out
		}
		cur = &Class{c: n, frozen: cur.frozen}
	}
	ak := make([]string, 0, len(o.c.aggs))
	for k := range o.c.aggs {
		ak = append(ak, k)
	}
	sort.Strings(ak)
	for _, k := range ak {
		d := o.c.aggs[k]
		emit(cur.c.withAggDom(k, cur.c.aggDom(k).Subtract(d)), nil)
		n := cur.c.withAggDom(k, cur.c.aggDom(k).Intersect(d))
		if n == nil {
			return out
		}
		cur = &Class{c: n, frozen: cur.frozen}
	}
	fk := make([]string, 0, len(o.frozen))
	for k := range o.frozen {
		fk = append(fk, k)
	}
	sort.Strings(fk)
	for _, k := range fk {
		d := o.frozen[k]
		if neg := cur.frozenDom(k).Subtract(d); !neg.IsEmpty() {
			nf := cloneFrozen(cur.frozen)
			nf[k] = neg
			emit(cur.c, nf)
		}
		pos := cur.frozenDom(k).Intersect(d)
		if pos.IsEmpty() {
			return out
		}
		nf := cloneFrozen(cur.frozen)
		nf[k] = pos
		cur = &Class{c: cur.c, frozen: nf}
	}
	return out
}

// SymPath is one terminal symbolic path through a program: the refined
// class and the merged action set (empty = drop) of the leaf reached.
type SymPath struct {
	Class   *Class
	Actions subscription.ActionSet
	Updates []string
}

// Explore symbolically executes the program from cl, returning one
// SymPath per execution path and whether the budget (0 = the Check
// default) was exhausted, in which case the list is partial. The
// class's working register space is interpreted as this program's
// switch; callers propagating across switches must Freeze between
// hops.
func (p *Program) Explore(cl *Class, budget int) ([]SymPath, bool) {
	if budget <= 0 {
		budget = Options{}.withDefaults().MaxPaths
	}
	paths, overflow := p.explore(cl.c, budget)
	out := make([]SymPath, 0, len(paths))
	for _, pr := range paths {
		sp := SymPath{Class: &Class{c: pr.c, frozen: cl.frozen}}
		if pr.leaf != nil {
			sp.Actions = pr.leaf.Actions
			sp.Updates = pr.leaf.Updates
		}
		out = append(out, sp)
	}
	return out, overflow
}

// Matcher is a subscription filter in the prover's processed form,
// ready for symbolic refinement. lastHop selects §II semantics: true
// keeps aggregate atoms active (with their §VI validity conjuncts),
// false erases them (upstream switches forward the stateless
// superset).
type Matcher struct {
	r *provedRule
}

// NewMatcher processes one filter expression.
func NewMatcher(e subscription.Expr, lastHop bool) (*Matcher, error) {
	prs, err := processRules(
		[]*subscription.Rule{{ID: 0, Filter: e, Action: subscription.FwdAction(0)}},
		Options{LastHop: lastHop})
	if err != nil {
		return nil, err
	}
	return &Matcher{r: prs[0]}, nil
}

// Stateful reports whether any disjunct reads aggregate state (always
// false for matchers built with lastHop=false).
func (m *Matcher) Stateful() bool {
	for _, d := range m.r.disjuncts {
		if len(d.aggKeys) > 0 {
			return true
		}
	}
	return false
}

// RefineTrue returns the satisfiable refinements of cl by each
// disjunct of the filter — their union is cl ∧ filter.
func (m *Matcher) RefineTrue(cl *Class) []*Class {
	var out []*Class
	for _, d := range m.r.disjuncts {
		if c := refineConjTrue(cl.c, d.atoms); c != nil {
			out = append(out, &Class{c: c, frozen: cl.frozen})
		}
	}
	return out
}

// RefineFalse returns classes covering cl ∧ ¬filter, or ok=false when
// the context fan-out exceeds budget (0 = the Check default) — the
// query is then inconclusive.
func (m *Matcher) RefineFalse(cl *Class, budget int) ([]*Class, bool) {
	if budget <= 0 {
		budget = Options{}.withDefaults().MaxContexts
	}
	ctxs, ok := refineFilterFalse(cl.c, m.r, budget)
	if !ok {
		return nil, false
	}
	out := make([]*Class, 0, len(ctxs))
	for _, c := range ctxs {
		out = append(out, &Class{c: c, frozen: cl.frozen})
	}
	return out, true
}

// Matches evaluates the filter concretely on an assignment (frozen
// register keys in Assignment.State are ignored — they belong to other
// switches).
func (m *Matcher) Matches(a *Assignment) bool {
	for _, d := range m.r.disjuncts {
		if d.atoms.eval(a) {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMixAnalyzer flags mixed atomic/plain access: if any statement
// in a package passes &x.f to a sync/atomic function, every other
// access to that field in the package must also go through sync/atomic.
// A plain read racing an atomic write is still a data race (and on
// 32-bit targets may tear); the analyzer makes the convention
// mechanical instead of tribal. Fields of the atomic.* value types
// (atomic.Int64 etc.) are already safe by construction and are not
// tracked.
//
// The analysis is per-package: unexported fields cannot be accessed
// from elsewhere anyway, and a package that atomically publishes an
// exported field should migrate it to an atomic.* type rather than rely
// on cross-package discipline.
var AtomicMixAnalyzer = &Analyzer{
	Name: "camus-atomic",
	Doc:  "flag plain access to fields elsewhere accessed via sync/atomic",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.TypesInfo()

	// Pass 1: find fields whose address feeds a sync/atomic call, and
	// remember the selector nodes inside those calls (they are the
	// sanctioned accesses).
	atomicFields := make(map[*types.Var]ast.Node) // field → first atomic call site
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				f := selectionField(info, sel)
				if f == nil {
					continue
				}
				if _, seen := atomicFields[f]; !seen {
					atomicFields[f] = call
				}
				sanctioned[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other selector resolving to a tracked field is a
	// plain (non-atomic) access.
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			f := selectionField(info, sel)
			if f == nil {
				return true
			}
			if _, tracked := atomicFields[f]; tracked {
				pass.Reportf(sel.Pos(),
					"non-atomic access to field %s, which is accessed with sync/atomic elsewhere in this package",
					f.Name())
			}
			return true
		})
	}
}

// isAtomicCall reports whether the call is to a function in sync/atomic
// (AddInt64, StoreUint32, CompareAndSwapPointer, ...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

package analysis

import "testing"

// Each analyzer is exercised against a fixture package of seeded
// violations under testdata/src (which go's wildcard patterns skip, so
// the seeded bugs never reach the build or the lint gate).

func TestSnapshotWriteAnalyzer(t *testing.T) {
	RunFixture(t, SnapshotWriteAnalyzer, "./testdata/src/snapshotwrite")
}

func TestOptionsOnlyAnalyzer(t *testing.T) {
	RunFixture(t, OptionsOnlyAnalyzer, "./testdata/src/optionsonly")
}

func TestOptionsOnlyAnalyzerCtlplane(t *testing.T) {
	RunFixture(t, OptionsOnlyAnalyzer, "./testdata/src/ctlplaneopts")
}

func TestOptionsOnlyAnalyzerFacade(t *testing.T) {
	RunFixture(t, OptionsOnlyAnalyzer, "./testdata/src/facadeopts")
}

func TestAtomicMixAnalyzer(t *testing.T) {
	RunFixture(t, AtomicMixAnalyzer, "./testdata/src/atomicmix")
}

func TestLockSendAnalyzer(t *testing.T) {
	RunFixture(t, LockSendAnalyzer, "./testdata/src/locksend")
}

func TestFitGateAnalyzer(t *testing.T) {
	RunFixture(t, FitGateAnalyzer, "./testdata/src/fitgate")
}

// TestSuiteCleanOnRepo asserts the tier-1 property directly: the whole
// module (tests included) carries zero findings.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	diags, err := Run(LoadConfig{Dir: "../..", Tests: true}, All(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

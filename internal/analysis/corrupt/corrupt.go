// Package corrupt seeds known-bad switch programs for the translation
// validator's regression corpus: deterministic, named mutations of a
// correctly compiled program that simulate compiler defects — wrong
// leaf actions, misdirected table entries, lost defaults, broken
// register updates. The prover (internal/analysis/prove) must produce
// a concrete counterexample packet for every one of them.
//
// Mutations work in place through the pointers compiler.Program shares
// with its internal indices, so the corrupted program stays internally
// consistent (the runtime really executes the corrupted tables).
package corrupt

import (
	"fmt"

	"camus/internal/compiler"
	"camus/internal/subscription"
)

// Mutation is one named corruption, JSON-encodable for corpus files.
type Mutation struct {
	// Op selects the corruption:
	//
	//	add-leaf-port    — leaf Leaf additionally forwards to Port
	//	remove-leaf-port — leaf Leaf no longer forwards to Port
	//	redirect-entry   — stage Stage's entry Entry jumps to state Out
	//	drop-default     — stage Stage loses the default for state Out
	//	drop-update      — leaf Leaf no longer updates aggregate Key
	//	add-update       — leaf Leaf spuriously updates aggregate Key
	Op string `json:"op"`
	// Stage and Entry index into Program.Stages / Table.Entries.
	Stage int `json:"stage,omitempty"`
	Entry int `json:"entry,omitempty"`
	// Leaf indexes into Program.Leaf.
	Leaf int `json:"leaf,omitempty"`
	Port int `json:"port,omitempty"`
	Key  string `json:"key,omitempty"`
	// Out is the redirect target state (redirect-entry) or the default's
	// in-state (drop-default).
	Out int32 `json:"out,omitempty"`
}

// Apply performs the mutation on the program in place.
func (m Mutation) Apply(p *compiler.Program) error {
	switch m.Op {
	case "add-leaf-port":
		le, err := leaf(p, m.Leaf)
		if err != nil {
			return err
		}
		le.Actions.Add(subscription.FwdAction(m.Port))
	case "remove-leaf-port":
		le, err := leaf(p, m.Leaf)
		if err != nil {
			return err
		}
		kept := le.Actions.Ports[:0:0]
		found := false
		for _, q := range le.Actions.Ports {
			if q == m.Port {
				found = true
				continue
			}
			kept = append(kept, q)
		}
		if !found {
			return fmt.Errorf("corrupt: leaf %d has no port %d", m.Leaf, m.Port)
		}
		le.Actions.Ports = kept
	case "redirect-entry":
		if m.Stage < 0 || m.Stage >= len(p.Stages) {
			return fmt.Errorf("corrupt: no stage %d", m.Stage)
		}
		t := p.Stages[m.Stage]
		if m.Entry < 0 || m.Entry >= len(t.Entries) {
			return fmt.Errorf("corrupt: stage %d has no entry %d", m.Stage, m.Entry)
		}
		t.Entries[m.Entry].Out = m.Out
	case "drop-default":
		if m.Stage < 0 || m.Stage >= len(p.Stages) {
			return fmt.Errorf("corrupt: no stage %d", m.Stage)
		}
		t := p.Stages[m.Stage]
		if _, ok := t.Defaults[m.Out]; !ok {
			return fmt.Errorf("corrupt: stage %d has no default for state %d", m.Stage, m.Out)
		}
		delete(t.Defaults, m.Out)
	case "drop-update":
		le, err := leaf(p, m.Leaf)
		if err != nil {
			return err
		}
		kept := le.Updates[:0:0]
		found := false
		for _, k := range le.Updates {
			if k == m.Key {
				found = true
				continue
			}
			kept = append(kept, k)
		}
		if !found {
			return fmt.Errorf("corrupt: leaf %d has no update %q", m.Leaf, m.Key)
		}
		le.Updates = kept
	case "add-update":
		le, err := leaf(p, m.Leaf)
		if err != nil {
			return err
		}
		le.Updates = append(le.Updates, m.Key)
	default:
		return fmt.Errorf("corrupt: unknown op %q", m.Op)
	}
	return nil
}

func leaf(p *compiler.Program, i int) (*compiler.LeafEntry, error) {
	if i < 0 || i >= len(p.Leaf) {
		return nil, fmt.Errorf("corrupt: no leaf %d", i)
	}
	return p.Leaf[i], nil
}

// Apply runs a mutation list in order.
func Apply(p *compiler.Program, ms []Mutation) error {
	for i, m := range ms {
		if err := m.Apply(p); err != nil {
			return fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	return nil
}

package corrupt

import (
	"fmt"

	"camus/internal/routing"
	"camus/internal/subscription"
)

// NetMutation is one named placement/routing corruption — the
// network-level analogue of Mutation. It mutates a computed routing
// policy (fat-tree Result or general-topology TreeResult) before
// compilation, simulating controller defects: a port entry the
// reconciler dropped, a stale refcount keeping a dead filter installed,
// a wrong α-approximation cut, a mis-wired tree port. The netcheck
// verifier must report every one with a replayable counterexample.
type NetMutation struct {
	// Op selects the corruption:
	//
	//	drop-port-entry — switch Switch's port Port loses filter FilterID
	//	                  (mis-dropped reconciler delta → black hole)
	//	redirect-port   — filter FilterID on Switch moves from Port to
	//	                  ToPort (wrong placement → black hole and/or
	//	                  spurious delivery)
	//	inject-filter   — Filter is installed on Switch's port Port
	//	                  although no live subscription owns it (stale
	//	                  refcount → spurious delivery)
	//	narrow-approx   — filter FilterID's α-approximation is replaced
	//	                  with Expr network-wide (wrong α cut: an
	//	                  under-approximation starves the delivering
	//	                  edge → black hole at the α boundary)
	//	rewire-peer     — tree mode: node Switch's port Port is rewired
	//	                  to neighbor ToPort's vertex (routing loop /
	//	                  duplicate delivery)
	//
	// The covering family corrupts subsumption-reduced tables
	// (internal/routing/cover), simulating defects in the covering
	// forest's uncover/promote machinery:
	//
	//	dropped-uncover — covering root FilterID vanishes from every
	//	                  port network-wide without its covered children
	//	                  being promoted (the uncover delta lost its
	//	                  install half → black hole for root AND
	//	                  children)
	//	stale-cover     — at Switch's port Port, promoted entry FilterID
	//	                  is replaced by Filter, the broader parent that
	//	                  should have been uncovered (stale refcount kept
	//	                  the root alive, the child never landed →
	//	                  spurious delivery of broad-but-not-narrow
	//	                  packets)
	//	over-broad-cover — filter FilterID's Expr and Approx are replaced
	//	                  by the broader Expr network-wide (an implication
	//	                  oracle that wrongly widened a root → spurious
	//	                  delivery)
	Op string `json:"op"`
	// Switch is the switch ID (fat tree) or graph vertex (tree).
	Switch int `json:"switch"`
	// Port and ToPort are local port indices.
	Port   int `json:"port,omitempty"`
	ToPort int `json:"to_port,omitempty"`
	// FilterID indexes the routing result's global filter table.
	FilterID int `json:"filter_id,omitempty"`
	// Expr carries the replacement approximation (narrow-approx).
	Expr subscription.Expr `json:"-"`
	// Filter carries the stale entry to install (inject-filter).
	Filter *routing.Filter `json:"-"`
}

// ApplyNet performs the mutation on a fat-tree routing result in place.
// Filter pointers are shared across FIBs, so narrow-approx propagates
// network-wide exactly like a controller computing the wrong cut once.
func (m NetMutation) ApplyNet(r *routing.Result) error {
	switch m.Op {
	case "drop-port-entry":
		fib, err := netFIB(r, m.Switch)
		if err != nil {
			return err
		}
		fs, ok := fib.Ports[m.Port]
		if !ok {
			return fmt.Errorf("corrupt: switch %d has no port %d", m.Switch, m.Port)
		}
		if _, ok := fs[m.FilterID]; !ok {
			return fmt.Errorf("corrupt: switch %d port %d has no filter %d", m.Switch, m.Port, m.FilterID)
		}
		delete(fs, m.FilterID)
	case "redirect-port":
		fib, err := netFIB(r, m.Switch)
		if err != nil {
			return err
		}
		fs, ok := fib.Ports[m.Port]
		if !ok {
			return fmt.Errorf("corrupt: switch %d has no port %d", m.Switch, m.Port)
		}
		f, ok := fs[m.FilterID]
		if !ok {
			return fmt.Errorf("corrupt: switch %d port %d has no filter %d", m.Switch, m.Port, m.FilterID)
		}
		delete(fs, m.FilterID)
		if fib.Ports[m.ToPort] == nil {
			fib.Ports[m.ToPort] = make(routing.FilterSet)
		}
		fib.Ports[m.ToPort][m.FilterID] = f
	case "inject-filter":
		if m.Filter == nil {
			return fmt.Errorf("corrupt: inject-filter needs a filter")
		}
		fib, err := netFIB(r, m.Switch)
		if err != nil {
			return err
		}
		if fib.Ports[m.Port] == nil {
			fib.Ports[m.Port] = make(routing.FilterSet)
		}
		fib.Ports[m.Port][m.Filter.ID] = m.Filter
	case "narrow-approx":
		if m.Expr == nil {
			return fmt.Errorf("corrupt: narrow-approx needs an expression")
		}
		f, err := netFilter(r.Filters, m.FilterID)
		if err != nil {
			return err
		}
		f.Approx = m.Expr
	case "dropped-uncover":
		found := false
		for _, fib := range r.FIBs {
			for _, fs := range fib.Ports {
				if _, ok := fs[m.FilterID]; ok {
					delete(fs, m.FilterID)
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("corrupt: filter %d installed nowhere", m.FilterID)
		}
	case "stale-cover":
		if m.Filter == nil {
			return fmt.Errorf("corrupt: stale-cover needs the stale parent filter")
		}
		fib, err := netFIB(r, m.Switch)
		if err != nil {
			return err
		}
		fs, ok := fib.Ports[m.Port]
		if !ok {
			return fmt.Errorf("corrupt: switch %d has no port %d", m.Switch, m.Port)
		}
		if _, ok := fs[m.FilterID]; !ok {
			return fmt.Errorf("corrupt: switch %d port %d has no filter %d", m.Switch, m.Port, m.FilterID)
		}
		delete(fs, m.FilterID)
		fs[m.Filter.ID] = m.Filter
	case "over-broad-cover":
		if m.Expr == nil {
			return fmt.Errorf("corrupt: over-broad-cover needs an expression")
		}
		f, err := netFilter(r.Filters, m.FilterID)
		if err != nil {
			return err
		}
		f.Expr = m.Expr
		f.Approx = m.Expr
	default:
		return fmt.Errorf("corrupt: unknown network op %q", m.Op)
	}
	return nil
}

// ApplyTree performs the mutation on a general-topology routing result
// in place.
func (m NetMutation) ApplyTree(r *routing.TreeResult) error {
	switch m.Op {
	case "drop-port-entry":
		fib, err := treeFIB(r, m.Switch)
		if err != nil {
			return err
		}
		fs, ok := fib.Ports[m.Port]
		if !ok {
			return fmt.Errorf("corrupt: node %d has no port %d", m.Switch, m.Port)
		}
		if _, ok := fs[m.FilterID]; !ok {
			return fmt.Errorf("corrupt: node %d port %d has no filter %d", m.Switch, m.Port, m.FilterID)
		}
		delete(fs, m.FilterID)
	case "inject-filter":
		if m.Filter == nil {
			return fmt.Errorf("corrupt: inject-filter needs a filter")
		}
		fib, err := treeFIB(r, m.Switch)
		if err != nil {
			return err
		}
		if fib.Ports[m.Port] == nil {
			fib.Ports[m.Port] = make(routing.FilterSet)
		}
		fib.Ports[m.Port][m.Filter.ID] = m.Filter
	case "narrow-approx":
		if m.Expr == nil {
			return fmt.Errorf("corrupt: narrow-approx needs an expression")
		}
		f, err := netFilter(r.Filters, m.FilterID)
		if err != nil {
			return err
		}
		f.Approx = m.Expr
	case "rewire-peer":
		fib, err := treeFIB(r, m.Switch)
		if err != nil {
			return err
		}
		if m.Port < 0 || m.Port >= len(fib.PortPeer) {
			return fmt.Errorf("corrupt: node %d has no port %d", m.Switch, m.Port)
		}
		fib.PortPeer[m.Port] = m.ToPort
	case "dropped-uncover":
		found := false
		for _, fib := range r.FIBs {
			if fib == nil {
				continue
			}
			for _, fs := range fib.Ports {
				if _, ok := fs[m.FilterID]; ok {
					delete(fs, m.FilterID)
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("corrupt: filter %d installed nowhere", m.FilterID)
		}
	case "stale-cover":
		if m.Filter == nil {
			return fmt.Errorf("corrupt: stale-cover needs the stale parent filter")
		}
		fib, err := treeFIB(r, m.Switch)
		if err != nil {
			return err
		}
		fs, ok := fib.Ports[m.Port]
		if !ok {
			return fmt.Errorf("corrupt: node %d has no port %d", m.Switch, m.Port)
		}
		if _, ok := fs[m.FilterID]; !ok {
			return fmt.Errorf("corrupt: node %d port %d has no filter %d", m.Switch, m.Port, m.FilterID)
		}
		delete(fs, m.FilterID)
		fs[m.Filter.ID] = m.Filter
	case "over-broad-cover":
		if m.Expr == nil {
			return fmt.Errorf("corrupt: over-broad-cover needs an expression")
		}
		f, err := netFilter(r.Filters, m.FilterID)
		if err != nil {
			return err
		}
		f.Expr = m.Expr
		f.Approx = m.Expr
	default:
		return fmt.Errorf("corrupt: unknown tree op %q", m.Op)
	}
	return nil
}

func netFIB(r *routing.Result, sw int) (*routing.FIB, error) {
	if sw < 0 || sw >= len(r.FIBs) {
		return nil, fmt.Errorf("corrupt: no switch %d", sw)
	}
	return r.FIBs[sw], nil
}

func treeFIB(r *routing.TreeResult, v int) (*routing.TreeFIB, error) {
	if v < 0 || v >= len(r.FIBs) || r.FIBs[v] == nil {
		return nil, fmt.Errorf("corrupt: no node %d", v)
	}
	return r.FIBs[v], nil
}

func netFilter(fs []*routing.Filter, id int) (*routing.Filter, error) {
	for _, f := range fs {
		if f.ID == id {
			return f, nil
		}
	}
	return nil, fmt.Errorf("corrupt: no filter %d", id)
}

package netsim

import (
	"sync"
	"testing"
	"time"

	"camus/internal/controller"
	"camus/internal/ctlplane"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// TestCoveringChurn drives the covering-heavy refinement-chain
// workload through a control plane running WithCovering. runChurnMode's
// final delivery comparison — converged covering tables vs. a fresh
// full-installation batch deploy of the surviving subscriptions — is
// the covering == full certification on the dataplane.
func TestCoveringChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	snap := runChurnMode(t, 400, 83, true, nil, ctlplane.WithCovering(0))
	if snap.Applied != snap.Events || snap.Failures != 0 {
		t.Errorf("unclean covering churn: %+v", snap)
	}
	if !snap.Covering {
		t.Error("snapshot does not report covering mode")
	}
	if snap.CoverObligations == 0 {
		t.Error("covering-heavy churn produced no covered obligations")
	}
	t.Logf("covering churn: %d events, %d entries + %d covered (%.0f%% elided)",
		snap.Events, snap.CoverEntries, snap.CoverObligations, snap.CoverSavingsRatio*100)
}

// TestCoveringChurnNetValidated is the acceptance run for covering
// under churn: the 1000-event covering-heavy workload with the
// network-wide delivery verifier always-on at every quiescent point.
// Every certification runs against the covering-reduced programs and
// the full subscription ground truth, so zero violations means the
// covering tables preserve every (filter, host) delivery cut
// throughout the churn — not just at convergence.
func TestCoveringChurnNetValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net := topology.MustFatTree(4)
	snap := runChurnMode(t, 1000, 91, true, nil,
		ctlplane.WithCovering(0),
		ctlplane.WithNetValidator(ctlplane.NetcheckValidator(net, itchSpec, 0), 1))
	if snap.Applied != snap.Events || snap.Failures != 0 {
		t.Errorf("unclean covering net-validated churn: %+v", snap)
	}
	if snap.NetValidations == 0 {
		t.Error("always-on net validator never ran")
	}
	if snap.NetValidationFailures != 0 {
		t.Errorf("%d delivery-invariant violations under covering churn", snap.NetValidationFailures)
	}
	if snap.CoverObligations == 0 {
		t.Error("certified churn run ended with no covered obligations")
	}
	t.Logf("covering net-validated churn: %d events, %d certifications, 0 violations; %d entries + %d covered",
		snap.Events, snap.NetValidations, snap.CoverEntries, snap.CoverObligations)
}

// TestUncoverEpochConsistency is the no-gap golden for uncovering:
// host 0 holds a broad GOOGL filter covering a narrow refinement, so
// the narrow filter has no table entries of its own. Unsubscribing the
// broad (covering) filter must re-install the narrow one in the same
// apply batch per switch — concurrent publishers of packets matching
// BOTH filters must see every single publication delivered to host 0,
// with no empty delivery set (a lost packet would mean a window where
// the covering entry was gone before the promotion landed) and no
// spurious host.
func TestUncoverEpochConsistency(t *testing.T) {
	net := topology.MustFatTree(4)
	ropts := routing.Options{Policy: routing.TrafficReduction}
	d, err := controller.Deploy(net, itchSpec, make([][]subscription.Expr, len(net.Hosts)),
		controller.Options{Routing: ropts})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	sim.Workers = 8
	svc, err := ctlplane.New(net, itchSpec,
		ctlplane.WithRouting(ropts),
		ctlplane.WithInstallers(sim.Installers()...),
		ctlplane.WithCovering(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if _, _, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL and price > 500")}); err != nil {
		t.Fatal(err)
	}
	_, broadIDs, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL")})
	if err != nil {
		t.Fatal(err)
	}
	svc.Quiesce()
	snap := svc.Stats()
	if snap.CoverObligations == 0 {
		t.Fatalf("narrow filter not covered before the uncovering: %+v", snap)
	}
	// Sanity on both epochs' semantics before racing the swap.
	if ds := deliverySet(sim.Publish(12, []*spec.Message{msg("GOOGL", 600, 1)}, 64)); ds != "[0]" {
		t.Fatalf("pre-uncover GOOGL@600 delivered to %s, want [0]", ds)
	}
	if ds := deliverySet(sim.Publish(12, []*spec.Message{msg("GOOGL", 100, 1)}, 64)); ds != "[0]" {
		t.Fatalf("pre-uncover GOOGL@100 delivered to %s, want [0]", ds)
	}

	// Publishers race the uncovering with packets matching BOTH the
	// broad and the narrow filter: delivery to host 0 must never blink.
	var mu sync.Mutex
	var sets []string
	var count int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pubs := make([]Publication, 16)
				for i := range pubs {
					pubs[i] = Publication{Host: 12, Msgs: []*spec.Message{msg("GOOGL", 600, 1)}, Bytes: 64}
				}
				out := sim.PublishBatch(pubs)
				mu.Lock()
				for _, ds := range out {
					sets = append(sets, deliverySet(ds))
				}
				count = int64(len(sets))
				mu.Unlock()
			}
		}()
	}
	waitFor := func(n int64) {
		for {
			mu.Lock()
			c := count
			mu.Unlock()
			if c >= n {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	waitFor(200)
	if _, err := svc.Unsubscribe(0, broadIDs); err != nil {
		t.Fatal(err)
	}
	svc.Quiesce()
	mu.Lock()
	atSwap := count
	mu.Unlock()
	waitFor(atSwap + 400)
	close(stop)
	wg.Wait()

	for i, set := range sets {
		if set != "[0]" {
			t.Fatalf("publication %d: delivery set %s across the uncovering, want [0] always (a gap or spurious host)", i, set)
		}
	}
	t.Logf("uncovering raced by %d publications, zero lost, zero spurious", len(sets))

	// Steady state: the promoted narrow entry delivers its packets...
	if ds := deliverySet(sim.Publish(12, []*spec.Message{msg("GOOGL", 600, 1)}, 64)); ds != "[0]" {
		t.Fatalf("post-uncover GOOGL@600 delivered to %s, want [0]", ds)
	}
	// ... and nothing else: no stale covering entry survives.
	if ds := deliverySet(sim.Publish(12, []*spec.Message{msg("GOOGL", 100, 1)}, 64)); ds != "[]" {
		t.Fatalf("post-uncover GOOGL@100 delivered to %s, want [] (stale cover entry)", ds)
	}
	snap = svc.Stats()
	if snap.CoverObligations != 0 {
		t.Errorf("obligations after uncovering = %d, want 0", snap.CoverObligations)
	}
}

package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var itchSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func filter(t testing.TB, src string) subscription.Expr {
	t.Helper()
	e, err := subscription.NewParser(itchSpec).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

func msg(stock string, price, shares int64) *spec.Message {
	m := spec.NewMessage(itchSpec)
	m.MustSet("stock", spec.StrVal(stock))
	m.MustSet("price", spec.IntVal(price))
	m.MustSet("shares", spec.IntVal(shares))
	return m
}

func deploy(t testing.TB, subs [][]subscription.Expr, opts controller.Options) *Sim {
	t.Helper()
	net := topology.MustFatTree(4)
	d, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	sim, err := New(d)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sim
}

// TestEndToEndDelivery is the central routing property (DESIGN.md §6):
// every published message reaches exactly the set of subscribed hosts —
// no loss, no spurious delivery, no duplicates, no loops — under both
// policies, with and without approximation.
func TestEndToEndDelivery(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	net := topology.MustFatTree(4)
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range subs {
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			subs[h] = append(subs[h], filter(t, fmt.Sprintf(
				"stock == %s and price > %d", stocks[r.Intn(len(stocks))], r.Intn(80))))
		}
	}
	for _, policy := range []routing.Policy{routing.MemoryReduction, routing.TrafficReduction} {
		for _, alpha := range []int64{0, 10} {
			sim := deploy(t, subs, controller.Options{
				Routing: routing.Options{Policy: policy, Alpha: alpha},
			})
			for trial := 0; trial < 60; trial++ {
				pub := r.Intn(len(net.Hosts))
				m := msg(stocks[r.Intn(len(stocks))], int64(r.Intn(100)), 1)
				deliveries := sim.Publish(pub, []*spec.Message{m}, 64)

				// Ground truth: all subscribed hosts except the
				// publisher itself (Algorithm 1 never forwards back out
				// the ingress port).
				want := make(map[int]bool)
				for h := range subs {
					if h == pub {
						continue
					}
					for _, e := range subs[h] {
						if subscription.EvalExpr(e, m, nil) {
							want[h] = true
						}
					}
				}
				got := make(map[int]int)
				for _, d := range deliveries {
					got[d.Host] += len(d.Msgs)
					if d.Hops < 1 || d.Hops > 6 {
						t.Errorf("%v/α=%d: delivery with %d hops", policy, alpha, d.Hops)
					}
				}
				for h := range want {
					if got[h] != 1 {
						t.Fatalf("%v/α=%d trial %d: host %d got %d copies of %s, want 1 (publisher %d)",
							policy, alpha, trial, h, got[h], m, pub)
					}
				}
				for h, n := range got {
					if !want[h] {
						t.Fatalf("%v/α=%d trial %d: spurious delivery of %s to host %d (×%d)",
							policy, alpha, trial, m, h, n)
					}
				}
			}
			if sim.Traffic().Looped != 0 {
				t.Errorf("%v/α=%d: %d packets hit the hop limit", policy, alpha, sim.Traffic().Looped)
			}
		}
	}
}

// TestEndToEndK6: the delivery property holds on a larger (k=6,
// 45-switch, 54-host) fat tree as well.
func TestEndToEndK6(t *testing.T) {
	if testing.Short() {
		t.Skip("large topology")
	}
	net := topology.MustFatTree(6)
	r := rand.New(rand.NewSource(8))
	stocks := []string{"GOOGL", "MSFT", "AAPL"}
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range subs {
		if r.Intn(2) == 0 {
			subs[h] = []subscription.Expr{filter(t, fmt.Sprintf(
				"stock == %s and price > %d", stocks[r.Intn(3)], r.Intn(50)))}
		}
	}
	d, err := controller.Deploy(net, itchSpec, subs, controller.Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		pub := r.Intn(len(net.Hosts))
		m := msg(stocks[r.Intn(3)], int64(r.Intn(60)), 1)
		got := make(map[int]int)
		for _, dl := range sim.Publish(pub, []*spec.Message{m}, 64) {
			got[dl.Host] += len(dl.Msgs)
		}
		for h := range subs {
			want := 0
			if h != pub {
				for _, e := range subs[h] {
					if subscription.EvalExpr(e, m, nil) {
						want = 1
					}
				}
			}
			if got[h] != want {
				t.Fatalf("k=6 trial %d: host %d got %d copies, want %d", trial, h, got[h], want)
			}
		}
	}
	if sim.Traffic().Looped != 0 {
		t.Errorf("loops on k=6: %d", sim.Traffic().Looped)
	}
}

// TestSelfDelivery: a host that subscribes to its own publications
// receives them via its ToR only (1 switch hop), not via the core.
func TestSelfDelivery(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[0] = []subscription.Expr{filter(t, "stock == GOOGL")}
	sim := deploy(t, subs, controller.Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	// Host 1 shares host 0's ToR.
	out := sim.Publish(1, []*spec.Message{msg("GOOGL", 1, 1)}, 64)
	if len(out) != 1 || out[0].Host != 0 {
		t.Fatalf("deliveries = %+v", out)
	}
	if out[0].Hops != 1 {
		t.Errorf("rack-local delivery took %d hops, want 1", out[0].Hops)
	}
	if sim.Traffic().CorePackets != 0 {
		t.Errorf("TR: rack-local traffic hit the core %d times", sim.Traffic().CorePackets)
	}
}

// TestMRGeneratesCoreTraffic: MR floods unmatched traffic to the core
// while TR keeps it rack-local — the memory/traffic trade-off of §IV-C.
func TestMRGeneratesCoreTraffic(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[0] = []subscription.Expr{filter(t, "stock == GOOGL")}

	publish := func(policy routing.Policy) int64 {
		sim := deploy(t, subs, controller.Options{Routing: routing.Options{Policy: policy}})
		for i := 0; i < 20; i++ {
			// Traffic nobody outside the rack wants.
			sim.Publish(1, []*spec.Message{msg("ZZZ", 1, 1)}, 64)
		}
		return sim.Traffic().CorePackets
	}
	mr := publish(routing.MemoryReduction)
	tr := publish(routing.TrafficReduction)
	if mr == 0 {
		t.Error("MR produced no core traffic")
	}
	if tr != 0 {
		t.Errorf("TR produced %d core packets for unmatched traffic", tr)
	}
}

// TestAlphaExtraTraffic: approximation adds (bounded) spurious upward
// traffic but never drops matching messages; deliveries to subscribers
// stay exact because the last hop re-checks the exact filter.
func TestAlphaExtraTraffic(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	// Host 12 (another pod) wants price > 57.
	subs[12] = []subscription.Expr{filter(t, "price > 57")}
	sim := deploy(t, subs, controller.Options{
		Routing: routing.Options{Policy: routing.TrafficReduction, Alpha: 10},
	})
	// price=55 matches the α-widened filter (price > 50) but not the
	// exact one: it must travel but NOT be delivered.
	out := sim.Publish(0, []*spec.Message{msg("X", 55, 1)}, 64)
	if len(out) != 0 {
		t.Fatalf("approximated traffic delivered: %+v", out)
	}
	if sim.Traffic().CorePackets == 0 {
		t.Error("approximated traffic did not cross the core (no extra traffic measured)")
	}
	// price=60 matches exactly → delivered.
	out = sim.Publish(0, []*spec.Message{msg("X", 60, 1)}, 64)
	if len(out) != 1 || out[0].Host != 12 {
		t.Fatalf("exact match lost: %+v", out)
	}
}

// TestMulticastFanOut: one publication to N subscribers crosses each
// link once (the switch replicates, not the publisher).
func TestMulticastFanOut(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := 1; h < len(net.Hosts); h++ {
		subs[h] = []subscription.Expr{filter(t, "stock == GOOGL")}
	}
	sim := deploy(t, subs, controller.Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	out := sim.Publish(0, []*spec.Message{msg("GOOGL", 10, 1)}, 64)
	if len(out) != 15 {
		t.Fatalf("deliveries = %d, want 15", len(out))
	}
	// The publication must traverse each core switch at most once; with
	// 15 subscribers spread over 4 pods, core crossings stay bounded by
	// the pod count, far below per-subscriber unicast (15).
	if sim.Traffic().CorePackets > 4 {
		t.Errorf("core packets = %d; multicast should not fan out unicast copies", sim.Traffic().CorePackets)
	}
}

// TestBatchDeliveryInvariant: publishing a MoldUDP batch delivers each
// host exactly the union of messages it would receive if the messages
// were published individually (per-port pruning, §VI-A, composed with
// routing).
func TestBatchDeliveryInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	net := topology.MustFatTree(4)
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range subs {
		if r.Intn(2) == 0 {
			subs[h] = []subscription.Expr{filter(t, fmt.Sprintf(
				"stock == %s and price > %d", stocks[r.Intn(4)], r.Intn(60)))}
		}
	}
	opts := controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction}}
	for trial := 0; trial < 15; trial++ {
		pub := r.Intn(len(net.Hosts))
		batch := make([]*spec.Message, 1+r.Intn(6))
		for i := range batch {
			batch[i] = msg(stocks[r.Intn(4)], int64(r.Intn(80)), int64(i))
		}
		// Batched publish.
		simA := deploy(t, subs, opts)
		gotBatch := make(map[int][]string)
		for _, dl := range simA.Publish(pub, batch, 64*len(batch)) {
			for _, m := range dl.Msgs {
				v, _ := m.GetRef("shares") // unique per message in this test
				gotBatch[dl.Host] = append(gotBatch[dl.Host], fmt.Sprint(v.Int))
			}
		}
		// Individual publishes on a fresh simulator.
		simB := deploy(t, subs, opts)
		gotSingle := make(map[int][]string)
		for _, m := range batch {
			for _, dl := range simB.Publish(pub, []*spec.Message{m}, 64) {
				for _, mm := range dl.Msgs {
					v, _ := mm.GetRef("shares")
					gotSingle[dl.Host] = append(gotSingle[dl.Host], fmt.Sprint(v.Int))
				}
			}
		}
		for h := range net.Hosts {
			a := append([]string(nil), gotBatch[h]...)
			b := append([]string(nil), gotSingle[h]...)
			sort.Strings(a)
			sort.Strings(b)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("trial %d host %d: batch %v != singles %v", trial, h, a, b)
			}
		}
	}
}

// TestECMPFlowStability: with ECMP enabled, every packet of a flow takes
// the same up link, and different flows spread across links (§IV-C:
// "ECMP could be used for flow-based protocols").
func TestECMPFlowStability(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[15] = []subscription.Expr{filter(t, "stock == GOOGL")}
	sim := deploy(t, subs, controller.Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	sim.ECMP = true
	// The same flow must be deliverable repeatedly (path stable, no
	// loss); distinct flows must also all deliver.
	for flow := uint64(1); flow <= 8; flow++ {
		for i := 0; i < 5; i++ {
			out := sim.PublishFlow(0, []*spec.Message{msg("GOOGL", 1, 1)}, 64, flow)
			if len(out) != 1 || out[0].Host != 15 {
				t.Fatalf("flow %d iteration %d: %+v", flow, i, out)
			}
		}
	}
}

// TestResubscribe: dynamic reconfiguration swaps the routing and the
// new subscriptions take effect.
func TestResubscribe(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[2] = []subscription.Expr{filter(t, "stock == GOOGL")}
	opts := controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction}}
	d, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if out := sim.Publish(0, []*spec.Message{msg("GOOGL", 1, 1)}, 64); len(out) != 1 || out[0].Host != 2 {
		t.Fatalf("initial deliveries: %+v", out)
	}
	// Migrate the subscription to host 9 (ILA-style service move).
	subs2 := make([][]subscription.Expr, len(net.Hosts))
	subs2[9] = []subscription.Expr{filter(t, "stock == GOOGL")}
	rep, err := d.Resubscribe(subs2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 {
		t.Error("recompile time not measured")
	}
	if rep.Full {
		t.Errorf("migration took the full-recompile path: %+v", rep)
	}
	if rep.Install == 0 || rep.Delete == 0 {
		t.Errorf("migration delta not reported: %+v", rep)
	}
	sim2, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if out := sim2.Publish(0, []*spec.Message{msg("GOOGL", 1, 1)}, 64); len(out) != 1 || out[0].Host != 9 {
		t.Fatalf("post-migration deliveries: %+v", out)
	}
	// ForceFull is the escape hatch: recompile the world from scratch.
	subs3 := make([][]subscription.Expr, len(net.Hosts))
	subs3[4] = []subscription.Expr{filter(t, "stock == GOOGL")}
	full := opts
	full.ForceFull = true
	rep3, err := d.Resubscribe(subs3, full)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Full {
		t.Errorf("ForceFull not honoured: %+v", rep3)
	}
	sim3, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if out := sim3.Publish(0, []*spec.Message{msg("GOOGL", 1, 1)}, 64); len(out) != 1 || out[0].Host != 4 {
		t.Fatalf("post-ForceFull deliveries: %+v", out)
	}
}

// TestLayerEntriesShape: TR stores more state than MR overall, and the
// controller's per-layer accounting is populated for all three layers.
func TestLayerEntriesShape(t *testing.T) {
	net := topology.MustFatTree(4)
	r := rand.New(rand.NewSource(3))
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range subs {
		for i := 0; i < 4; i++ {
			subs[h] = append(subs[h], filter(t, fmt.Sprintf(
				"stock == S%d and price > %d and shares < %d",
				r.Intn(20), r.Intn(100), r.Intn(100))))
		}
	}
	opts := controller.Options{Routing: routing.Options{Policy: routing.MemoryReduction}}
	mr, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Routing.Policy = routing.TrafficReduction
	tr, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mrE, trE := mr.LayerEntries(), tr.LayerEntries()
	for _, l := range []topology.Layer{topology.ToR, topology.Agg, topology.Core} {
		if mrE[l] == 0 || trE[l] == 0 {
			t.Errorf("layer %v has zero entries: MR=%d TR=%d", l, mrE[l], trE[l])
		}
	}
	mrTotal := mrE[topology.ToR] + mrE[topology.Agg] + mrE[topology.Core]
	trTotal := trE[topology.ToR] + trE[topology.Agg] + trE[topology.Core]
	if trTotal <= mrTotal {
		t.Errorf("TR (%d entries) should use more memory than MR (%d)", trTotal, mrTotal)
	}
	total, byLayer := tr.CompileTime()
	if total <= 0 || byLayer[topology.ToR] <= 0 {
		t.Errorf("compile time not accounted: %v %v", total, byLayer)
	}
}

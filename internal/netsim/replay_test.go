package netsim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"camus/internal/analysis/corrupt"
	"camus/internal/analysis/prove"
	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestProverCounterexampleReplaysOnNetwork closes the loop between the
// symbolic prover and the simulated network: seed a known-bad program
// on one ToR (a compiler-defect mutation from internal/analysis/
// corrupt), let the prover produce a concrete counterexample packet,
// then publish exactly that packet through netsim.Sim. The corrupted
// network's delivery set must diverge from the independent AST
// evaluator's prediction — and a reference network running the
// uncorrupted deployment must agree with the AST. The whole outcome is
// pinned by a golden file (testdata/replay_known_bad.golden).
func TestProverCounterexampleReplaysOnNetwork(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[0] = []subscription.Expr{filter(t, "stock == GOOGL and price > 50")}
	subs[1] = []subscription.Expr{filter(t, "stock == MSFT")}
	opts := controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction}}
	ref, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := controller.Deploy(net, itchSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}

	tor, _ := net.Access(0)
	if tor1, port1 := func() (int, int) { s, p := net.Access(1); return s, p }(); tor1 != tor {
		t.Fatalf("hosts 0 and 1 on different ToRs")
	} else {
		// Seed the known-bad program: the first leaf that does not
		// already forward to host 1 spuriously gains its port (the
		// adaptive pick keeps the corpus valid across compiler layout
		// changes; the golden pins the resulting behavior).
		prog := bad.Programs[tor]
		leafIdx := -1
		for i, le := range prog.Leaf {
			hasPort := false
			for _, p := range le.Actions.Ports {
				if p == port1 {
					hasPort = true
				}
			}
			if !hasPort {
				leafIdx = i
				break
			}
		}
		if leafIdx < 0 {
			t.Fatalf("every leaf already forwards to port %d", port1)
		}
		mut := corrupt.Mutation{Op: "add-leaf-port", Leaf: leafIdx, Port: port1}
		if err := mut.Apply(prog); err != nil {
			t.Fatal(err)
		}
	}

	// Prove the corrupted ToR against its rule set, with exactly the
	// controller's per-switch options.
	tsw := net.Switches[tor]
	popts := prove.Options{
		LastHop: false,
		LastHopPort: func(port int) bool {
			return port >= 0 && port < len(tsw.Ports) && tsw.Ports[port].Kind == topology.PeerHost
		},
	}
	rules := bad.Routing.RulesForSwitch(tor)
	ir, err := bad.Programs[tor].ProveIR()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prove.Check(ir, rules, popts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("prover found no divergence in the corrupted program")
	}
	var cexFinding *prove.Finding
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Cex != nil && f.Cex.Stateless() {
			cexFinding = f
			break
		}
	}
	if cexFinding == nil {
		t.Fatalf("no stateless counterexample among %d findings", len(res.Findings))
	}
	m, err := cexFinding.Cex.Message(itchSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Independent ground truth: a host should receive the packet iff
	// one of its subscription filters matches, evaluated on the AST —
	// no compiler, no BDD, no tables. The publisher never hears its
	// own publication (ingress drop).
	const publisher = 0
	var astWant []int
	for h, exprs := range subs {
		if h == publisher {
			continue
		}
		for _, e := range exprs {
			if subscription.EvalExpr(e, m, nil) {
				astWant = append(astWant, h)
				break
			}
		}
	}
	sort.Ints(astWant)

	refSim, err := New(ref)
	if err != nil {
		t.Fatal(err)
	}
	badSim, err := New(bad)
	if err != nil {
		t.Fatal(err)
	}
	refSet := deliverySet(refSim.Publish(publisher, []*spec.Message{m}, 64))
	badSet := deliverySet(badSim.Publish(publisher, []*spec.Message{m}, 64))

	if refSet != fmt.Sprint(astWant) {
		t.Errorf("clean network disagrees with AST evaluator: net %s, ast %v", refSet, astWant)
	}
	if badSet == refSet {
		t.Errorf("counterexample did not reproduce on the network: both deliver %s", refSet)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "finding: %s (rule %d)\n", cexFinding.Kind, cexFinding.RuleID)
	fmt.Fprintf(&b, "cex: %s\n", formatCex(cexFinding.Cex))
	fmt.Fprintf(&b, "switch-level: want %s, got %s\n", cexFinding.Want.Key(), cexFinding.Got.Key())
	fmt.Fprintf(&b, "ast deliveries: %v\n", astWant)
	fmt.Fprintf(&b, "clean network:  %s\n", refSet)
	fmt.Fprintf(&b, "corrupted:      %s\n", badSet)
	golden := filepath.Join("testdata", "replay_known_bad.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("replay outcome changed:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// formatCex renders an assignment deterministically (sorted fields).
func formatCex(a *prove.Assignment) string {
	keys := make([]string, 0, len(a.Fields))
	for k := range a.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, a.Fields[k])
	}
	return strings.Join(parts, " ")
}

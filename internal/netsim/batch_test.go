package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// batchWorkload builds a deterministic subscription set and publication
// list over the k=4 fat tree.
func batchWorkload(t *testing.T, seed int64, n int) ([][]subscription.Expr, []Publication) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	subs := make([][]subscription.Expr, 16)
	for h := range subs {
		for i := 0; i < r.Intn(3); i++ {
			subs[h] = append(subs[h], filter(t, fmt.Sprintf(
				"stock == %s and price > %d", stocks[r.Intn(len(stocks))], r.Intn(80))))
		}
	}
	pubs := make([]Publication, n)
	for i := range pubs {
		pubs[i] = Publication{
			Host:  r.Intn(16),
			Msgs:  []*spec.Message{msg(stocks[r.Intn(len(stocks))], int64(r.Intn(100)), 1)},
			Bytes: 64,
		}
	}
	return subs, pubs
}

// TestPublishBatchDeterminism: with a single worker, PublishBatch is
// byte-identical to the seed's sequential Publish loop — same
// deliveries, same order, same latencies, same traffic counters.
func TestPublishBatchDeterminism(t *testing.T) {
	subs, pubs := batchWorkload(t, 11, 80)
	opts := controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction}}

	seq := deploy(t, subs, opts)
	want := make([][]HostDelivery, len(pubs))
	for i, p := range pubs {
		want[i] = seq.PublishFlow(p.Host, p.Msgs, p.Bytes, p.Flow)
	}

	batch := deploy(t, subs, opts) // Workers defaults to 0 → sequential
	got := batch.PublishBatch(pubs)

	if !reflect.DeepEqual(want, got) {
		t.Fatal("single-worker PublishBatch differs from sequential Publish")
	}
	if wt, gt := seq.Traffic(), batch.Traffic(); !reflect.DeepEqual(wt, gt) {
		t.Errorf("traffic diverged: sequential %+v, batch %+v", wt, gt)
	}
}

// TestPublishBatchParallel: with several workers the delivery SETS per
// publication are exact (same hosts, same messages, same hop counts);
// only round-robin path choice may differ. Runs under -race in the
// tier-1 gate, which is what verifies switch/sim concurrency safety.
func TestPublishBatchParallel(t *testing.T) {
	subs, pubs := batchWorkload(t, 13, 120)
	opts := controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction}}

	seq := deploy(t, subs, opts)
	want := make([][]HostDelivery, len(pubs))
	for i, p := range pubs {
		want[i] = seq.PublishFlow(p.Host, p.Msgs, p.Bytes, p.Flow)
	}

	par := deploy(t, subs, opts)
	par.Workers = 4
	got := par.PublishBatch(pubs)

	key := func(ds []HostDelivery) []string {
		out := make([]string, 0, len(ds))
		for _, d := range ds {
			out = append(out, fmt.Sprintf("h%d n%d hops%d", d.Host, len(d.Msgs), d.Hops))
		}
		sort.Strings(out)
		return out
	}
	for i := range pubs {
		if !reflect.DeepEqual(key(want[i]), key(got[i])) {
			t.Fatalf("pub %d: parallel deliveries %v, want %v", i, key(got[i]), key(want[i]))
		}
	}

	// Aggregate traffic accounting is conserved: same packets entered
	// the fabric regardless of interleaving (per-layer counts can shift
	// between Agg and Core only through up-port round-robin, which
	// round-robins over equal-layer ports, so totals match exactly).
	wt, gt := seq.Traffic(), par.Traffic()
	if wt.Dropped != gt.Dropped || wt.Looped != gt.Looped {
		t.Errorf("drop/loop diverged: %+v vs %+v", wt, gt)
	}
	var wl, gl int64
	for _, n := range wt.LinkPackets {
		wl += n
	}
	for _, n := range gt.LinkPackets {
		gl += n
	}
	if wl != gl {
		t.Errorf("total link packets: %d vs %d", wl, gl)
	}
}

package netsim

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"camus/internal/controller"
	"camus/internal/ctlplane"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// TestHotSwapEpochConsistency hot-swaps a ToR's program mid-batch and
// checks every in-flight packet sees exactly one epoch: host 0 and
// host 1 share a ToR, the old program delivers GOOGL to host 0, the new
// one to host 1, and no delivery set may mix (both hosts) or drop
// (neither) — the atomicity pipeline.Switch.Install promises.
func TestHotSwapEpochConsistency(t *testing.T) {
	net := topology.MustFatTree(4)
	tor0, _ := net.Access(0)
	if tor1, _ := net.Access(1); tor1 != tor0 {
		t.Fatalf("hosts 0 and 1 on different ToRs (%d, %d)", tor0, tor1)
	}
	opts := controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction}}
	oldSubs := make([][]subscription.Expr, len(net.Hosts))
	oldSubs[0] = []subscription.Expr{filter(t, "stock == GOOGL")}
	newSubs := make([][]subscription.Expr, len(net.Hosts))
	newSubs[1] = []subscription.Expr{filter(t, "stock == GOOGL")}

	d, err := controller.Deploy(net, itchSpec, oldSubs, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := controller.Deploy(net, itchSpec, newSubs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Moving the subscription between two hosts on one ToR changes only
	// that ToR's program — upper layers route to the same subtree.
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	sim.Workers = 8

	// Publishers run until both epochs have been observed; the install
	// is gated on a minimum pre-swap delivery count so neither side of
	// the swap can be missed, regardless of scheduling.
	var mu sync.Mutex
	var sets []string
	var count int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pubs := make([]Publication, 16)
				for i := range pubs {
					pubs[i] = Publication{Host: 12, Msgs: []*spec.Message{msg("GOOGL", 10, 1)}, Bytes: 64}
				}
				out := sim.PublishBatch(pubs)
				mu.Lock()
				for _, ds := range out {
					sets = append(sets, deliverySet(ds))
				}
				count = int64(len(sets))
				mu.Unlock()
			}
		}()
	}
	waitFor := func(n int64) {
		for {
			mu.Lock()
			c := count
			mu.Unlock()
			if c >= n {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	waitFor(200)
	if err := sim.Switches[tor0].Install(d2.Programs[tor0]); err != nil {
		t.Errorf("Install: %v", err)
	}
	mu.Lock()
	atSwap := count
	mu.Unlock()
	// Everything published from here on sees the new epoch; wait for a
	// comfortable margin past the swap plus any in-flight batches.
	waitFor(atSwap + 400)
	close(stop)
	wg.Wait()

	oldN, newN := 0, 0
	for i, set := range sets {
		switch set {
		case "[0]":
			oldN++
		case "[1]":
			newN++
		default:
			t.Fatalf("publication %d: mixed-epoch delivery set %s", i, set)
		}
	}
	if oldN == 0 || newN == 0 {
		t.Errorf("both epochs must be observed: old=%d new=%d", oldN, newN)
	}
	t.Logf("epochs observed: old=%d new=%d", oldN, newN)
	// After the swap, steady state is the new epoch only.
	if ds := sim.Publish(12, []*spec.Message{msg("GOOGL", 10, 1)}, 64); len(ds) != 1 || ds[0].Host != 1 {
		t.Fatalf("post-swap deliveries: %+v", ds)
	}
}

func deliverySet(ds []HostDelivery) string {
	hosts := make([]int, len(ds))
	for i, d := range ds {
		hosts[i] = d.Host
	}
	sort.Ints(hosts)
	return fmt.Sprint(hosts)
}

// runChurn drives a generated churn stream through a live control plane
// wired to the sim's switches while concurrently publishing traffic,
// then checks the converged network delivers exactly like a fresh batch
// deployment of the surviving subscriptions. Returns the service stats.
func runChurn(t *testing.T, events int, seed int64, validator ctlplane.Validator, extra ...ctlplane.Option) ctlplane.Snapshot {
	t.Helper()
	return runChurnMode(t, events, seed, false, validator, extra...)
}

// runChurnMode is runChurn with the workload mode exposed: coverHeavy
// generates the Zipf-nested refinement-chain pool (workload.CoverChains)
// instead of independent Siena filters. The final delivery comparison
// against a fresh full-installation batch deploy doubles as the
// covering == full certification when the service runs WithCovering.
func runChurnMode(t *testing.T, events int, seed int64, coverHeavy bool, validator ctlplane.Validator, extra ...ctlplane.Option) ctlplane.Snapshot {
	t.Helper()
	net := topology.MustFatTree(4)
	ropts := routing.Options{Policy: routing.TrafficReduction, Alpha: 10}
	d, err := controller.Deploy(net, itchSpec, make([][]subscription.Expr, len(net.Hosts)),
		controller.Options{Routing: ropts})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	sim.Workers = 4
	opts := []ctlplane.Option{
		ctlplane.WithRouting(ropts),
		ctlplane.WithInstallers(sim.Installers()...),
		ctlplane.WithSeed(seed),
		ctlplane.WithValidator(validator, 0),
	}
	svc, err := ctlplane.New(net, itchSpec, append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	evs, err := workload.Churn(workload.ChurnConfig{
		Spec: itchSpec, Hosts: len(net.Hosts), Events: events,
		PoolSize: 40, CoverHeavy: coverHeavy, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Background traffic during churn: deliveries only have to be
	// self-consistent per epoch (the hot-swap test pins that down); here
	// we exercise the race surface under -race.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed + 1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			pubs := make([]Publication, 32)
			for i := range pubs {
				pubs[i] = Publication{
					Host:  r.Intn(len(net.Hosts)),
					Msgs:  []*spec.Message{msg(fmt.Sprintf("S%03d", r.Intn(100)), int64(r.Intn(1000)), 1)},
					Bytes: 64,
				}
			}
			sim.PublishBatch(pubs)
		}
	}()

	live := make(map[int]int) // churn key → ctlplane filter id
	finalSubs := make([][]subscription.Expr, len(net.Hosts))
	finalByHost := make(map[int]map[int]subscription.Expr)
	for _, ev := range evs {
		if ev.Add {
			_, ids, err := svc.Subscribe(ev.Host, []subscription.Expr{ev.Filter})
			if err != nil {
				t.Fatal(err)
			}
			live[ev.Key] = ids[0]
			if finalByHost[ev.Host] == nil {
				finalByHost[ev.Host] = make(map[int]subscription.Expr)
			}
			finalByHost[ev.Host][ids[0]] = ev.Filter
		} else {
			id := live[ev.Key]
			delete(live, ev.Key)
			if _, err := svc.Unsubscribe(ev.Host, []int{id}); err != nil {
				t.Fatal(err)
			}
			delete(finalByHost[ev.Host], id)
		}
	}
	svc.Quiesce()
	close(stop)
	wg.Wait()

	for h, byID := range finalByHost {
		ids := make([]int, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			finalSubs[h] = append(finalSubs[h], byID[id])
		}
	}
	ref, err := controller.Deploy(net, itchSpec, finalSubs, controller.Options{Routing: ropts})
	if err != nil {
		t.Fatal(err)
	}
	refSim, err := New(ref)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed + 2))
	for trial := 0; trial < 50; trial++ {
		pub := r.Intn(len(net.Hosts))
		m := msg(fmt.Sprintf("S%03d", r.Intn(100)), int64(r.Intn(1000)), 1)
		got := deliverySet(sim.Publish(pub, []*spec.Message{m}, 64))
		want := deliverySet(refSim.Publish(pub, []*spec.Message{m}, 64))
		if got != want {
			t.Fatalf("trial %d: converged deliveries %s != batch deploy %s", trial, got, want)
		}
	}
	return svc.Stats()
}

// TestLiveChurn is the end-to-end control-plane integration: churn +
// traffic, then convergence to the batch-deploy semantics.
func TestLiveChurn(t *testing.T) {
	snap := runChurn(t, 150, 31, nil)
	if snap.Applied != snap.Events || snap.Failures != 0 {
		t.Errorf("unclean churn run: %+v", snap)
	}
	if snap.Latency.N == 0 {
		t.Error("no update latency recorded")
	}
}

// TestChurnSoak is the longer race-surface soak (make check runs it
// race-enabled; CAMUS_SOAK=1 extends it).
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	events := 400
	if os.Getenv("CAMUS_SOAK") != "" {
		events = 3000
	}
	snap := runChurn(t, events, 47, nil)
	if snap.Applied != snap.Events || snap.Failures != 0 {
		t.Errorf("unclean soak: %+v", snap)
	}
	t.Logf("soak: %d events, %d batches, +%d -%d =%d, latency %s",
		snap.Events, snap.Batches, snap.Installs, snap.Deletes, snap.Keeps, snap.Latency)
}

// TestChurnValidated is the translation-validation acceptance run: the
// full churn workload with the symbolic prover always-on as the
// post-apply validator. Every epoch every switch swaps to during 1000
// subscription events must be proved equivalent to that switch's
// surviving rule set — zero disequivalent epochs, zero skipped proofs.
func TestChurnValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net := topology.MustFatTree(4)
	snap := runChurn(t, 1000, 61, ctlplane.ProveValidator(net, 0))
	if snap.Applied != snap.Events || snap.Failures != 0 {
		t.Errorf("unclean validated churn: %+v", snap)
	}
	if snap.ValidationFailures != 0 {
		t.Errorf("%d disequivalent epochs under churn", snap.ValidationFailures)
	}
	if snap.Validations != snap.Batches {
		t.Errorf("always-on validator skipped proofs: validations %d != batches %d",
			snap.Validations, snap.Batches)
	}
	t.Logf("validated churn: %d events, %d batches, %d proofs, 0 disequivalent",
		snap.Events, snap.Batches, snap.Validations)
}

// TestChurnNetValidated runs netcheck-under-churn: the full 1000-event
// workload with the network-wide delivery verifier always-on at every
// quiescent point. Each time the in-flight count returns to zero the
// validator symbolically re-certifies the whole fat tree — every
// surviving subscription delivered exactly once, loop-free, nothing
// spurious — against the per-switch programs the churn actually
// installed. Zero violations is the acceptance bar.
func TestChurnNetValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net := topology.MustFatTree(4)
	snap := runChurn(t, 1000, 71, nil,
		ctlplane.WithNetValidator(ctlplane.NetcheckValidator(net, itchSpec, 0), 1))
	if snap.Applied != snap.Events || snap.Failures != 0 {
		t.Errorf("unclean net-validated churn: %+v", snap)
	}
	if snap.NetValidations == 0 {
		t.Error("always-on net validator never ran")
	}
	if snap.NetValidationFailures != 0 {
		t.Errorf("%d delivery-invariant violations under churn", snap.NetValidationFailures)
	}
	t.Logf("net-validated churn: %d events, %d network certifications, 0 violations",
		snap.Events, snap.NetValidations)
}

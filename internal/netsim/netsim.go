// Package netsim is the event-driven network simulator standing in for
// the paper's Tofino testbed and Mininet emulation: it instantiates one
// software switch (internal/pipeline) per topology switch, forwards
// packets hop by hop, resolves the logical up port, and accounts
// deliveries, latency, and per-layer traffic.
package netsim

import (
	"fmt"
	"time"

	"camus/internal/controller"
	"camus/internal/pipeline"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/topology"
)

// HostDelivery is one message batch arriving at a host.
type HostDelivery struct {
	Host    int
	Msgs    []*spec.Message
	Latency time.Duration // network transit time, publisher to host
	Hops    int
}

// TrafficStats counts link traversals per layer boundary — the Fig. 13d
// extra-traffic metric counts packets crossing core links.
type TrafficStats struct {
	// LinkPackets counts packets entering switches of each layer.
	LinkPackets map[topology.Layer]int64
	// CorePackets counts packets traversing core switches.
	CorePackets int64
	// Dropped counts packets that matched nothing at some switch.
	Dropped int64
	// Looped counts packets killed by the hop limit (must stay 0).
	Looped int64
}

// Sim is a running simulation of a deployment.
type Sim struct {
	Deployment *controller.Deployment
	Switches   []*pipeline.Switch
	Traffic    TrafficStats
	// LinkLatency is the per-hop wire latency.
	LinkLatency time.Duration
	// HopLimit kills packets after this many switch hops (loop guard).
	HopLimit int
	// ECMP selects the physical up link by hashing the packet's flow
	// instead of round-robin, keeping a flow on one path (§IV-C: "ECMP
	// could be used for flow-based protocols").
	ECMP bool

	clock time.Duration
	// upRR is the per-switch round-robin pointer for resolving the
	// logical up port to a physical up link (§IV-C: "Camus actually
	// chooses one of the corresponding physical ports, at random or
	// round-robin").
	upRR []int
}

// New builds a simulator from a deployment.
func New(d *controller.Deployment) (*Sim, error) {
	s := &Sim{
		Deployment:  d,
		Switches:    make([]*pipeline.Switch, len(d.Network.Switches)),
		LinkLatency: 500 * time.Nanosecond,
		HopLimit:    16,
		upRR:        make([]int, len(d.Network.Switches)),
		Traffic:     TrafficStats{LinkPackets: make(map[topology.Layer]int64)},
	}
	for _, tsw := range d.Network.Switches {
		sw, err := pipeline.New(tsw.Name, d.Static, d.Programs[tsw.ID], pipeline.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("netsim: switch %s: %w", tsw.Name, err)
		}
		s.Switches[tsw.ID] = sw
	}
	return s, nil
}

// Clock returns the current virtual time.
func (s *Sim) Clock() time.Duration { return s.clock }

// Advance moves the virtual clock forward.
func (s *Sim) Advance(d time.Duration) { s.clock += d }

// inFlight is a packet positioned at a switch ingress.
type inFlight struct {
	sw      int
	inPort  int
	fromUp  bool // arrived via one of the switch's up ports
	msgs    []*spec.Message
	bytes   int
	latency time.Duration
	hops    int
	flow    uint64 // ECMP flow hash
}

// Publish injects a packet from a host and forwards it to completion,
// returning every host delivery. Processing is synchronous at the
// current virtual clock (switch transit latencies are summed into the
// per-delivery latency but do not advance the global clock).
func (s *Sim) Publish(host int, msgs []*spec.Message, bytes int) []HostDelivery {
	return s.PublishFlow(host, msgs, bytes, 0)
}

// PublishFlow is Publish with an explicit flow identity for ECMP path
// selection (flow 0 hashes from the publisher).
func (s *Sim) PublishFlow(host int, msgs []*spec.Message, bytes int, flow uint64) []HostDelivery {
	if flow == 0 {
		flow = uint64(host)*0x9E3779B97F4A7C15 + 1
	}
	swID, port := s.Deployment.Network.Access(host)
	queue := []inFlight{{
		sw: swID, inPort: port, msgs: msgs, bytes: bytes,
		latency: s.LinkLatency, flow: flow,
	}}
	var out []HostDelivery
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if f.hops >= s.HopLimit {
			s.Traffic.Looped++
			continue
		}
		tsw := s.Deployment.Network.Switches[f.sw]
		s.Traffic.LinkPackets[tsw.Layer]++
		if tsw.Layer == topology.Core {
			s.Traffic.CorePackets++
		}
		sw := s.Switches[f.sw]
		deliveries := sw.Process(&pipeline.Packet{In: f.inPort, Msgs: f.msgs, Bytes: f.bytes}, s.clock)
		if len(deliveries) == 0 {
			s.Traffic.Dropped++
			continue
		}
		for _, d := range deliveries {
			next := s.resolvePort(tsw, d.Port, f)
			if next == nil {
				continue
			}
			lat := f.latency + d.Latency + s.LinkLatency
			if next.Kind == topology.PeerHost {
				out = append(out, HostDelivery{
					Host: next.PeerHostID, Msgs: d.Msgs, Latency: lat, Hops: f.hops + 1,
				})
				continue
			}
			peer := s.Deployment.Network.Switches[next.PeerSwitch]
			queue = append(queue, inFlight{
				sw:      next.PeerSwitch,
				inPort:  next.PeerPort,
				fromUp:  peer.Ports[next.PeerPort].Kind == topology.PeerUp,
				msgs:    d.Msgs,
				bytes:   f.bytes * maxInt(len(d.Msgs), 1) / maxInt(len(f.msgs), 1),
				latency: lat,
				hops:    f.hops + 1,
				flow:    f.flow,
			})
		}
	}
	return out
}

// resolvePort maps a forwarding decision to a physical port. The logical
// up port (routing.UpPort) resolves round-robin over the physical up
// links, and is suppressed for packets that arrived from above (§IV-C:
// "a packet received on one of the upward ports is never forwarded to
// the up port", which keeps hierarchical routing loop-free).
func (s *Sim) resolvePort(tsw *topology.Switch, port int, f inFlight) *topology.Port {
	if port == routing.UpPort {
		if f.fromUp {
			return nil
		}
		ups := tsw.UpPorts()
		if len(ups) == 0 {
			return nil
		}
		var p topology.Port
		if s.ECMP {
			// Flow-hash path selection: one flow, one path.
			h := f.flow * 0xBF58476D1CE4E5B9
			p = ups[int(h>>32)%len(ups)]
		} else {
			p = ups[s.upRR[tsw.ID]%len(ups)]
			s.upRR[tsw.ID]++
		}
		return &p
	}
	if port < 0 || port >= len(tsw.Ports) {
		return nil
	}
	p := tsw.Ports[port]
	return &p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ResetTraffic clears traffic counters between experiment phases.
func (s *Sim) ResetTraffic() {
	s.Traffic = TrafficStats{LinkPackets: make(map[topology.Layer]int64)}
}

// Package netsim is the event-driven network simulator standing in for
// the paper's Tofino testbed and Mininet emulation: it instantiates one
// software switch (internal/pipeline) per topology switch, forwards
// packets hop by hop, resolves the logical up port, and accounts
// deliveries, latency, and per-layer traffic.
//
// The simulator is concurrency-safe: traffic counters, the virtual
// clock, and the round-robin up-port pointers are atomics, and the
// pipeline switches are themselves concurrent, so independent
// publications can fan out across goroutines (PublishBatch).
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/controller"
	"camus/internal/ctlplane"
	"camus/internal/pipeline"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/topology"
)

// HostDelivery is one message batch arriving at a host.
type HostDelivery struct {
	Host    int
	Msgs    []*spec.Message
	Latency time.Duration // network transit time, publisher to host
	Hops    int
}

// TrafficStats is an immutable snapshot of link traversals per layer
// boundary — the Fig. 13d extra-traffic metric counts packets crossing
// core links. Obtain one via Sim.Traffic().
type TrafficStats struct {
	// LinkPackets counts packets entering switches of each layer.
	LinkPackets map[topology.Layer]int64
	// CorePackets counts packets traversing core switches.
	CorePackets int64
	// Dropped counts packets that matched nothing at some switch.
	Dropped int64
	// Looped counts packets killed by the hop limit (must stay 0).
	Looped int64
}

// numLayers sizes the per-layer counter block (ToR, Agg, Core).
const numLayers = int(topology.Core) + 1

// trafficCounters is the live, atomically-updated form of TrafficStats.
type trafficCounters struct {
	linkPackets [numLayers]atomic.Int64
	corePackets atomic.Int64
	dropped     atomic.Int64
	looped      atomic.Int64
}

func (t *trafficCounters) snapshot() TrafficStats {
	out := TrafficStats{
		LinkPackets: make(map[topology.Layer]int64, numLayers),
		CorePackets: t.corePackets.Load(),
		Dropped:     t.dropped.Load(),
		Looped:      t.looped.Load(),
	}
	for l := 0; l < numLayers; l++ {
		if n := t.linkPackets[l].Load(); n != 0 {
			out.LinkPackets[topology.Layer(l)] = n
		}
	}
	return out
}

func (t *trafficCounters) reset() {
	for l := 0; l < numLayers; l++ {
		t.linkPackets[l].Store(0)
	}
	t.corePackets.Store(0)
	t.dropped.Store(0)
	t.looped.Store(0)
}

// Sim is a running simulation of a deployment. Configuration fields
// (LinkLatency, HopLimit, ECMP, Workers) are set before traffic starts;
// traffic accounting is read via the Traffic() snapshot.
type Sim struct {
	Deployment *controller.Deployment
	Switches   []*pipeline.Switch
	// LinkLatency is the per-hop wire latency.
	LinkLatency time.Duration
	// HopLimit kills packets after this many switch hops (loop guard).
	HopLimit int
	// ECMP selects the physical up link by hashing the packet's flow
	// instead of round-robin, keeping a flow on one path (§IV-C: "ECMP
	// could be used for flow-based protocols").
	ECMP bool
	// Workers bounds the goroutines PublishBatch fans publications out
	// across; 0 or 1 publishes sequentially (deterministic order).
	Workers int

	clock   atomic.Int64 // virtual time, ns
	traffic trafficCounters
	// upRR is the per-switch round-robin pointer for resolving the
	// logical up port to a physical up link (§IV-C: "Camus actually
	// chooses one of the corresponding physical ports, at random or
	// round-robin").
	upRR []atomic.Int64
}

// New builds a simulator from a deployment.
func New(d *controller.Deployment) (*Sim, error) {
	s := &Sim{
		Deployment:  d,
		Switches:    make([]*pipeline.Switch, len(d.Network.Switches)),
		LinkLatency: 500 * time.Nanosecond,
		HopLimit:    16,
		upRR:        make([]atomic.Int64, len(d.Network.Switches)),
	}
	for _, tsw := range d.Network.Switches {
		sw, err := pipeline.NewSwitch(tsw.Name, d.Static, d.Programs[tsw.ID])
		if err != nil {
			return nil, fmt.Errorf("netsim: switch %s: %w", tsw.Name, err)
		}
		s.Switches[tsw.ID] = sw
	}
	return s, nil
}

// Installers adapts the sim's switches to the control-plane apply
// interface (ctlplane.WithInstallers), so a live ctlplane.Service
// can hot-swap programs on the running simulation.
func (s *Sim) Installers() []ctlplane.Installer {
	out := make([]ctlplane.Installer, len(s.Switches))
	for i, sw := range s.Switches {
		out[i] = sw
	}
	return out
}

// Clock returns the current virtual time.
func (s *Sim) Clock() time.Duration { return time.Duration(s.clock.Load()) }

// Advance moves the virtual clock forward.
func (s *Sim) Advance(d time.Duration) { s.clock.Add(int64(d)) }

// Traffic returns a snapshot of the traffic counters.
func (s *Sim) Traffic() TrafficStats { return s.traffic.snapshot() }

// inFlight is a packet positioned at a switch ingress.
type inFlight struct {
	sw      int
	inPort  int
	fromUp  bool // arrived via one of the switch's up ports
	msgs    []*spec.Message
	bytes   int
	latency time.Duration
	hops    int
	flow    uint64 // ECMP flow hash
}

// Publish injects a packet from a host and forwards it to completion,
// returning every host delivery. Processing is synchronous at the
// current virtual clock (switch transit latencies are summed into the
// per-delivery latency but do not advance the global clock).
func (s *Sim) Publish(host int, msgs []*spec.Message, bytes int) []HostDelivery {
	return s.PublishFlow(host, msgs, bytes, 0)
}

// PublishFlow is Publish with an explicit flow identity for ECMP path
// selection (flow 0 hashes from the publisher).
func (s *Sim) PublishFlow(host int, msgs []*spec.Message, bytes int, flow uint64) []HostDelivery {
	out, _ := s.publishFlow(host, msgs, bytes, flow, nil)
	return out
}

// publishFlow forwards one publication to completion using queue as the
// BFS workspace (head-index FIFO, no per-hop reslicing). It returns the
// deliveries plus the possibly-grown queue so batch callers can reuse
// one buffer across many publications instead of allocating per call;
// the returned deliveries are always fresh.
func (s *Sim) publishFlow(host int, msgs []*spec.Message, bytes int, flow uint64, queue []inFlight) ([]HostDelivery, []inFlight) {
	if flow == 0 {
		flow = uint64(host)*0x9E3779B97F4A7C15 + 1
	}
	swID, port := s.Deployment.Network.Access(host)
	queue = append(queue[:0], inFlight{
		sw: swID, inPort: port, msgs: msgs, bytes: bytes,
		latency: s.LinkLatency, flow: flow,
	})
	var out []HostDelivery
	now := s.Clock()
	for head := 0; head < len(queue); head++ {
		f := queue[head]
		if f.hops >= s.HopLimit {
			s.traffic.looped.Add(1)
			continue
		}
		tsw := s.Deployment.Network.Switches[f.sw]
		s.traffic.linkPackets[tsw.Layer].Add(1)
		if tsw.Layer == topology.Core {
			s.traffic.corePackets.Add(1)
		}
		sw := s.Switches[f.sw]
		deliveries := sw.Process(&pipeline.Packet{In: f.inPort, Msgs: f.msgs, Bytes: f.bytes}, now)
		if len(deliveries) == 0 {
			s.traffic.dropped.Add(1)
			continue
		}
		for _, d := range deliveries {
			next := s.resolvePort(tsw, d.Port, f)
			if next == nil {
				continue
			}
			lat := f.latency + d.Latency + s.LinkLatency
			if next.Kind == topology.PeerHost {
				out = append(out, HostDelivery{
					Host: next.PeerHostID, Msgs: d.Msgs, Latency: lat, Hops: f.hops + 1,
				})
				continue
			}
			peer := s.Deployment.Network.Switches[next.PeerSwitch]
			queue = append(queue, inFlight{
				sw:      next.PeerSwitch,
				inPort:  next.PeerPort,
				fromUp:  peer.Ports[next.PeerPort].Kind == topology.PeerUp,
				msgs:    d.Msgs,
				bytes:   f.bytes * max(len(d.Msgs), 1) / max(len(f.msgs), 1),
				latency: lat,
				hops:    f.hops + 1,
				flow:    f.flow,
			})
		}
	}
	return out, queue
}

// resolvePort maps a forwarding decision to a physical port. The logical
// up port (routing.UpPort) resolves round-robin over the physical up
// links, and is suppressed for packets that arrived from above (§IV-C:
// "a packet received on one of the upward ports is never forwarded to
// the up port", which keeps hierarchical routing loop-free).
func (s *Sim) resolvePort(tsw *topology.Switch, port int, f inFlight) *topology.Port {
	if port == routing.UpPort {
		if f.fromUp {
			return nil
		}
		ups := tsw.UpPorts()
		if len(ups) == 0 {
			return nil
		}
		var p topology.Port
		if s.ECMP {
			// Flow-hash path selection: one flow, one path.
			h := f.flow * 0xBF58476D1CE4E5B9
			p = ups[int(h>>32)%len(ups)]
		} else {
			n := s.upRR[tsw.ID].Add(1) - 1
			p = ups[int(n)%len(ups)]
		}
		return &p
	}
	if port < 0 || port >= len(tsw.Ports) {
		return nil
	}
	p := tsw.Ports[port]
	return &p
}

// ResetTraffic clears traffic counters between experiment phases.
func (s *Sim) ResetTraffic() { s.traffic.reset() }

// Publication is one host's packet injection, the unit PublishBatch
// fans out.
type Publication struct {
	// Host is the publishing host.
	Host int
	// Msgs are the application messages in the packet.
	Msgs []*spec.Message
	// Bytes is the wire size (traffic accounting).
	Bytes int
	// Flow optionally pins the ECMP flow identity (0 hashes from Host).
	Flow uint64
}

// PublishBatch injects independent publications and returns each one's
// host deliveries, indexed like pubs. With Workers <= 1 the batch runs
// sequentially in order, producing results identical to calling Publish
// per publication; with more workers the publications are forwarded
// concurrently (the pipeline switches and traffic counters are
// concurrency-safe), which keeps delivery sets exact but lets paths
// chosen by the round-robin up-port pointer vary with scheduling.
func (s *Sim) PublishBatch(pubs []Publication) [][]HostDelivery {
	out := make([][]HostDelivery, len(pubs))
	w := s.Workers
	if w > len(pubs) {
		w = len(pubs)
	}
	// Each worker (and the sequential path) owns one BFS queue buffer
	// for the whole batch, so the harness allocates per publication only
	// what it hands back to the caller.
	if w <= 1 || len(pubs) < 2 {
		var queue []inFlight
		for i, p := range pubs {
			out[i], queue = s.publishFlow(p.Host, p.Msgs, p.Bytes, p.Flow, queue)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var queue []inFlight
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pubs) {
					return
				}
				p := pubs[i]
				out[i], queue = s.publishFlow(p.Host, p.Msgs, p.Bytes, p.Flow, queue)
			}
		}()
	}
	wg.Wait()
	return out
}

// Package stats provides the measurement helpers the benchmark harness
// uses: latency distributions (CDFs, percentiles) and table formatting
// for the paper's figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sample accumulates scalar observations (latencies in nanoseconds,
// entry counts, ...).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// AddDuration appends a latency observation.
func (s *Sample) AddDuration(d time.Duration) { s.Add(float64(d.Nanoseconds())) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

func (s *Sample) sortOnce() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation; 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortOnce()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Max returns the maximum observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortOnce()
	return s.xs[len(s.xs)-1]
}

// Min returns the minimum observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortOnce()
	return s.xs[0]
}

// CDF returns (value, fraction ≤ value) pairs at the given resolution —
// the series plotted in the paper's latency figures (Fig. 8, 11).
func (s *Sample) CDF(points int) [][2]float64 {
	if len(s.xs) == 0 || points < 2 {
		return nil
	}
	s.sortOnce()
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		idx := int(frac * float64(len(s.xs)-1))
		out = append(out, [2]float64{s.xs[idx], float64(idx+1) / float64(len(s.xs))})
	}
	return out
}

// FracBelow returns the fraction of observations ≤ v.
func (s *Sample) FracBelow(v float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortOnce()
	i := sort.SearchFloat64s(s.xs, v)
	for i < len(s.xs) && s.xs[i] <= v {
		i++
	}
	return float64(i) / float64(len(s.xs))
}

// Table renders experiment rows with aligned columns — the bench
// harness's figure/table output format.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			// Four significant digits keep small throughputs (0.0039
			// Mpps) and large entry counts readable in one format.
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

package stats

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05}, {99, 99.01},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got < tc.want-0.5 || got > tc.want+0.5 {
			t.Errorf("P%.0f = %.2f, want ≈%.2f", tc.p, got, tc.want)
		}
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %f", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("min/max = %f/%f", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty sample should return zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF")
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.AddDuration(time.Duration(r.Intn(1000)) * time.Microsecond)
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i][0] < cdf[i-1][0] || cdf[i][1] < cdf[i-1][1] {
			t.Fatalf("CDF not monotone at %d: %v %v", i, cdf[i-1], cdf[i])
		}
	}
	if cdf[len(cdf)-1][1] != 1.0 {
		t.Errorf("CDF does not reach 1: %f", cdf[len(cdf)-1][1])
	}
}

func TestFracBelow(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FracBelow(5); got != 0.5 {
		t.Errorf("FracBelow(5) = %f", got)
	}
	if got := s.FracBelow(100); got != 1 {
		t.Errorf("FracBelow(100) = %f", got)
	}
	if got := s.FracBelow(0); got != 0 {
		t.Errorf("FracBelow(0) = %f", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "Fig. X",
		Header: []string{"series", "value"},
	}
	tbl.AddRow("camus", 12.5)
	tbl.AddRow("baseline", 100*time.Microsecond)
	tbl.AddRow("n", 42)
	tbl.AddRow("tiny", 0.00394)
	out := tbl.String()
	for _, want := range []string{"## Fig. X", "series", "camus", "12.5", "100µs", "42", "0.00394", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

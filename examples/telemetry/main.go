// Command telemetry runs the network telemetry analytics application
// (§VIII-C2): packet subscriptions filter anomalous INT events in the
// switch, doing the work of a Kafka + Spark pipeline.
package main

import (
	"fmt"
	"log"

	"camus/camus"
	"camus/internal/formats"
	"camus/internal/workload"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.INT)
	if err != nil {
		log.Fatal(err)
	}
	// The analytics cluster subscribes to anomalies only: high per-hop
	// latency on specific switches, deep queues anywhere.
	rules, err := app.ParseRules(`
switch_id == 2 and hop_latency > 100: fwd(1)
switch_id == 7 and hop_latency > 100: fwd(1)
queue_depth > 48: fwd(2)
`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := app.Compile(rules)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := app.NewSwitch("collector-tor", prog)
	if err != nil {
		log.Fatal(err)
	}

	stream := workload.INTStream(workload.INTStreamConfig{Reports: 200000, Seed: 3})
	fmt.Printf("replaying %d INT reports through the switch filter...\n", len(stream))
	m := app.NewMessage()
	matched := 0
	for _, r := range stream {
		r.FillMessage(m)
		if !sw.EvalMessage(m, 0).IsEmpty() {
			matched++
		}
	}
	fmt.Printf("anomalous events forwarded to analytics: %d / %d (%.3f%%)\n",
		matched, len(stream), 100*float64(matched)/float64(len(stream)))
	fmt.Printf("switch filter state: %s\n", prog.Resources)
	fmt.Println("\nwithout Camus, all reports would cross the collection cluster;")
	fmt.Printf("with Camus the cluster ingests %.3f%% of the stream.\n",
		100*float64(matched)/float64(len(stream)))
}

// Command quickstart is the minimal Camus walkthrough: define a message
// format, subscribe with filters, compile to pipeline tables, and push
// packets through a software switch.
package main

import (
	"fmt"
	"log"

	"camus/camus"
)

const specSrc = `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`

func main() {
	// 1. The application describes its packet format (paper Fig. 4).
	app, err := camus.NewApp("itch", specSrc)
	if err != nil {
		log.Fatalf("spec: %v", err)
	}

	// 2. End points submit packet subscriptions: "send me the packets
	// that match this filter".
	rules, err := app.ParseRules(`
stock == GOOGL and price > 50: fwd(1)
stock == GOOGL: fwd(2)
price < 10: fwd(3)
`)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}

	// 3. The compiler turns the rules into a BDD and then into
	// match-action tables (Fig. 5 → Fig. 6).
	prog, err := app.Compile(rules)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Println(camus.Describe(prog))
	fmt.Printf("resources: %s\n\n", prog.Resources)

	// 4. A software switch executes the compiled tables.
	sw, err := app.NewSwitch("demo", prog)
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	send := func(stock string, price int64) {
		m := app.NewMessage()
		m.MustSet("stock", camus.StrVal(stock))
		m.MustSet("price", camus.IntVal(price))
		m.MustSet("shares", camus.IntVal(100))
		out := sw.Process(&camus.Packet{In: 0, Msgs: []*camus.Message{m}}, 0)
		fmt.Printf("publish stock=%-6s price=%4d → ", stock, price)
		if len(out) == 0 {
			fmt.Println("dropped")
			return
		}
		for _, d := range out {
			fmt.Printf("port %d ", d.Port)
		}
		fmt.Println()
	}
	send("GOOGL", 60) // overlapping rules → multicast to ports 1 and 2
	send("GOOGL", 20) // only the unconditional GOOGL subscription
	send("MSFT", 5)   // cheap → port 3
	send("MSFT", 500) // nobody cares → dropped
}

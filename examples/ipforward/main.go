// Command ipforward runs the "Traditional IP" application (§VIII-C8):
// packet subscriptions generalize ordinary forwarding rules, so plain
// destination-based IPv4 forwarding is just one subscription per host —
// assigned by the application, not by the network.
package main

import (
	"fmt"
	"log"

	"camus/camus"
	"camus/internal/formats"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.NetBase)
	if err != nil {
		log.Fatal(err)
	}
	net, err := camus.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	// Each host subscribes to its own address: exactly classic IP
	// forwarding, expressed as filters.
	subs := make([][]camus.Expr, len(net.Hosts))
	for h := range net.Hosts {
		f, err := app.ParseFilter(fmt.Sprintf("dst == 10.0.0.%d", h+1))
		if err != nil {
			log.Fatal(err)
		}
		subs[h] = []camus.Expr{f}
	}
	d, err := app.Deploy(net, subs, camus.DeployOptions{Policy: camus.TrafficReduction})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := camus.Simulate(d)
	if err != nil {
		log.Fatal(err)
	}

	send := func(from, to int) {
		wire, err := formats.EncodeFrame(
			formats.IPv4(10, 0, 0, from+1), formats.IPv4(10, 0, 0, to+1),
			1234, 80, []byte("GET /"))
		if err != nil {
			log.Fatal(err)
		}
		m := app.NewMessage()
		if _, err := formats.DecodeFrame(wire, m); err != nil {
			log.Fatal(err)
		}
		out := sim.Publish(from, []*camus.Message{m}, len(wire))
		if len(out) == 1 && out[0].Host == to {
			fmt.Printf("h%-2d → h%-2d delivered in %d hops (%v)\n",
				from, to, out[0].Hops, out[0].Latency)
			return
		}
		fmt.Printf("h%-2d → h%-2d FAILED: %+v\n", from, to, out)
	}
	send(0, 1)  // same rack
	send(0, 3)  // same pod
	send(0, 15) // across the core
	send(9, 0)
	fmt.Println("\nIP forwarding is one packet subscription per host — the")
	fmt.Println("network imposed no addressing; the application chose it.")
}

// Command highway runs the IoT motor-highway monitoring application
// (§VIII-C6, Linear-Road-inspired): car motes emit 10 position reports
// per second; subscriptions detect speeding inside lat/long boxes and
// forward only violations to the monitoring server — in a single
// pipeline pass despite predicating on five fields.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"camus/camus"
	"camus/internal/formats"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.Highway)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's example rule plus two more monitored zones.
	rules, err := app.ParseRules(`
x > 10 and x < 20 and y > 30 and y < 40 and spd > 55: fwd(1)
x > 100 and x < 140 and y > 10 and y < 25 and spd > 55: fwd(1)
highway == 7 and spd > 65: fwd(2)
`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := app.Compile(rules)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := app.NewSwitch("roadside", prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d zone rules: %s\n\n", 3, prog.Resources)

	r := rand.New(rand.NewSource(42))
	cars := 200
	reports, violations := 0, 0
	m := app.NewMessage()
	for tick := 0; tick < 100; tick++ { // 10 seconds at 10 Hz
		for car := 0; car < cars; car++ {
			rep := &formats.PositionReport{
				CarID:   int64(car),
				X:       int64(r.Intn(160)),
				Y:       int64(r.Intn(50)),
				Speed:   int64(40 + r.Intn(40)),
				Highway: int64(car % 10),
			}
			m.Reset()
			m.MustSet("car_id", camus.IntVal(rep.CarID))
			m.MustSet("x", camus.IntVal(rep.X))
			m.MustSet("y", camus.IntVal(rep.Y))
			m.MustSet("spd", camus.IntVal(rep.Speed))
			m.MustSet("highway", camus.IntVal(rep.Highway))
			reports++
			if !sw.EvalMessage(m, 0).IsEmpty() {
				violations++
			}
		}
	}
	fmt.Printf("position reports processed: %d\n", reports)
	fmt.Printf("violations forwarded to monitors: %d (%.2f%%)\n",
		violations, 100*float64(violations)/float64(reports))
	fmt.Println("\nall five predicates evaluate in one pipeline pass — no recirculation.")
}

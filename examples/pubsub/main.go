// Command pubsub runs the Kafka-shim application (§VIII-C7): an
// API-compatible topic pub/sub where the switch, not a broker cluster,
// routes messages to subscribers — including hierarchical topic
// prefixes and partition filters.
package main

import (
	"fmt"
	"log"

	"camus/camus"
	"camus/internal/formats"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.Kafka)
	if err != nil {
		log.Fatal(err)
	}
	net, err := camus.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	consumers := map[int]string{
		1:  `topic prefix "metrics/"`,                  // all metrics
		4:  `topic == "metrics/cpu"`,                   // one topic
		7:  `topic prefix "logs/" and partition == 3`,  // one partition
		10: `topic == "orders" and key_hash >= 0x8000`, // keyspace shard
	}
	subs := make([][]camus.Expr, len(net.Hosts))
	for host, src := range consumers {
		f, err := app.ParseFilter(src)
		if err != nil {
			log.Fatalf("host %d: %v", host, err)
		}
		subs[host] = []camus.Expr{f}
		fmt.Printf("consumer h%-2d: %s\n", host, src)
	}
	d, err := app.Deploy(net, subs, camus.DeployOptions{Policy: camus.TrafficReduction})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := camus.Simulate(d)
	if err != nil {
		log.Fatal(err)
	}

	publish := func(producer int, msg *formats.KafkaMessage) {
		wire, err := formats.EncodeKafka(msg)
		if err != nil {
			log.Fatal(err)
		}
		decoded, payload, err := formats.DecodeKafka(wire)
		if err != nil {
			log.Fatal(err)
		}
		out := sim.Publish(producer, []*camus.Message{decoded}, len(wire))
		fmt.Printf("\nproduce topic=%q partition=%d payload=%q:\n",
			msg.Topic, msg.Partition, payload)
		if len(out) == 0 {
			fmt.Println("  (no consumers)")
		}
		for _, dl := range out {
			fmt.Printf("  → consumer h%d (%v)\n", dl.Host, dl.Latency)
		}
	}
	publish(0, &formats.KafkaMessage{Topic: "metrics/cpu", Partition: 1, Payload: []byte(`{"load":0.7}`)})
	publish(0, &formats.KafkaMessage{Topic: "metrics/mem", Partition: 2, Payload: []byte(`{"rss":123}`)})
	publish(0, &formats.KafkaMessage{Topic: "logs/app", Partition: 3, Payload: []byte("panic!")})
	publish(0, &formats.KafkaMessage{Topic: "orders", Partition: 0, KeyHash: 0x9999, Payload: []byte("buy")})
	publish(0, &formats.KafkaMessage{Topic: "chatter", Partition: 0, Payload: []byte("nobody listens")})
}

// Command hicn runs the video-streaming application (§VIII-C4): Camus
// stateful predicates meter content popularity in the switch and route
// only "hot" requests (likely cache hits) to the software hICN
// forwarder; cold requests bypass it toward the origin, cutting tail
// latency (§VIII-E3, Fig. 11).
package main

import (
	"fmt"
	"log"
	"time"

	"camus/camus"
	"camus/internal/formats"
	"camus/internal/workload"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.HICN)
	if err != nil {
		log.Fatal(err)
	}
	// Port 1 = software hICN forwarder (cache); port 2 = upstream path
	// to the origin. The meter counts video requests over a 10ms
	// tumbling window; during busy periods (likely cache hits) requests
	// go to the forwarder, otherwise they bypass it upstream.
	rules, err := app.ParseRules(`
name_prefix prefix "video/" and count(content_meter) >= 3: fwd(1)
name_prefix prefix "video/" and count(content_meter) < 3: fwd(2)
`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := app.Compile(rules, camus.LastHop())
	if err != nil {
		log.Fatal(err)
	}
	sw, err := app.NewSwitch("edge", prog)
	if err != nil {
		log.Fatal(err)
	}

	reqs := workload.HICNStream(workload.HICNConfig{Requests: 5000, HotFraction: 0.8, Seed: 1})
	toCache, toOrigin := 0, 0
	now := time.Duration(0)
	for _, r := range reqs {
		now += 50 * time.Microsecond
		out := sw.Process(&camus.Packet{In: 0, Msgs: []*camus.Message{r.Message()}}, now)
		for _, d := range out {
			switch d.Port {
			case 1:
				toCache++
			case 2:
				toOrigin++
			}
		}
	}
	fmt.Printf("requests: %d\n", len(reqs))
	fmt.Printf("steered to forwarder cache (hot, meter ≥ 3/10ms): %d\n", toCache)
	fmt.Printf("sent upstream toward origin:                      %d\n", toOrigin)
	fmt.Println("\nthe forwarder only sees traffic likely to hit its cache;")
	fmt.Println("cold requests skip the software hop entirely (Fig. 11).")
}

// Command streams demonstrates the paper's sketched extensions that this
// implementation includes: stream subscriptions (§VII-B — the first
// packet of a flow carries the application header and installs the
// stream's forwarding decision for header-less continuation packets) and
// incremental compilation (§V — subscription changes reuse the BDD
// engine's memoized state and emit control-plane entry deltas).
package main

import (
	"fmt"
	"log"
	"time"

	"camus/camus"
)

const specSrc = `
header video_flow {
    channel : str16 @field;
    bitrate : u32 @field;
}
`

func main() {
	app, err := camus.NewApp("video", specSrc)
	if err != nil {
		log.Fatal(err)
	}

	// --- Incremental compilation -------------------------------------
	inc, err := app.NewIncremental()
	if err != nil {
		log.Fatal(err)
	}
	rules, err := app.ParseRules(`
channel == "sports": fwd(1)
channel == "news": fwd(2)
channel == "sports" and bitrate > 5000: fwd(3)
`)
	if err != nil {
		log.Fatal(err)
	}
	up, err := inc.Add(rules...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %d rules: +%d entries (%v)\n",
		len(rules), up.AddedEntries, up.Elapsed.Round(time.Microsecond))

	extra, err := app.ParseRules(`channel == "movies": fwd(4)`)
	if err != nil {
		log.Fatal(err)
	}
	extra[0].ID = 100
	up2, err := inc.Add(extra[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one subscriber joins:  +%d entries, -%d entries, %d reused (%v)\n",
		up2.AddedEntries, up2.RemovedEntries, up2.ReusedEntries,
		up2.Elapsed.Round(time.Microsecond))
	up3, err := inc.Remove(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscriber leaves:     +%d entries, -%d entries, %d reused (%v)\n\n",
		up3.AddedEntries, up3.RemovedEntries, up3.ReusedEntries,
		up3.Elapsed.Round(time.Microsecond))

	// --- Stream subscriptions -----------------------------------------
	sw, err := app.NewSwitch("edge", inc.Program())
	if err != nil {
		log.Fatal(err)
	}
	const flow = camus.FlowKey(0xFEED)

	// First packet of the stream carries the header.
	head := app.NewMessage()
	head.MustSet("channel", camus.StrVal("sports"))
	head.MustSet("bitrate", camus.IntVal(8000))
	out := sw.Process(&camus.Packet{In: 0, Flow: flow, Msgs: []*camus.Message{head}}, 0)
	fmt.Printf("stream head (sports @ 8000 kbps) → ports:")
	for _, d := range out {
		fmt.Printf(" %d", d.Port)
	}
	fmt.Println("  (decision cached for the flow)")

	// Continuation packets carry no application header at all.
	for i := 1; i <= 3; i++ {
		now := time.Duration(i) * time.Millisecond
		cont := sw.Process(&camus.Packet{In: 0, Flow: flow, Bytes: 1400}, now)
		fmt.Printf("continuation %d (no header) → ports:", i)
		for _, d := range cont {
			fmt.Printf(" %d", d.Port)
		}
		fmt.Println()
	}
	st := sw.Stats()
	fmt.Printf("\nflow cache: %d hits, %d misses — header parsed once per stream\n",
		st.FlowHits, st.FlowMisses)
}

// Command dnsresolver runs the in-network DNS application (§VIII-C5):
// each DNS entry is one subscription with the custom answerDNS action;
// the switch crafts authoritative answers itself and only forwards
// unknown names to the real DNS server.
package main

import (
	"fmt"
	"log"

	"camus/camus"
	"camus/internal/formats"
	"camus/internal/subscription"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.DNS)
	if err != nil {
		log.Fatal(err)
	}
	// One rule per DNS entry, plus the miss rule routing everything the
	// switch cannot answer to the real resolver on port 9. The miss rule
	// is the explicit complement of the cached names (subscriptions have
	// no priorities; "else" is expressed as negation).
	rules, err := app.ParseRules(`
qtype == 1 and name == h101: answerDNS(10.0.0.101)
qtype == 1 and name == h105: answerDNS(10.0.0.105)
qtype == 1 and name == web: answerDNS(10.0.1.1)
name != h101 and name != h105 and name != web: fwd(9)
qtype != 1: fwd(9)
`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := app.Compile(rules)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := app.NewSwitch("dns-tor", prog)
	if err != nil {
		log.Fatal(err)
	}
	// The custom action handler crafts the AA response and reflects it
	// to the querying port.
	sw.HandleCustom("answerDNS", func(act subscription.Action, m *camus.Message, pkt *camus.Packet) []camus.Delivery {
		name, _ := m.GetRef("name")
		fmt.Printf("  switch answers %-6s → %s (authoritative)\n", name.Str, act.Args[0])
		return []camus.Delivery{{Port: pkt.In, Msgs: []*camus.Message{m}}}
	})

	query := func(name string) {
		q := &formats.DNSQuery{TxID: 1, QType: formats.QTypeA, Name: name}
		wire, err := formats.EncodeDNS(q)
		if err != nil {
			log.Fatal(err)
		}
		m, err := formats.DecodeDNS(wire)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %s:\n", name)
		out := sw.Process(&camus.Packet{In: 3, Msgs: []*camus.Message{m}}, 0)
		for _, d := range out {
			if d.Port == 9 {
				fmt.Printf("  forwarded to DNS server on port 9 (cache miss)\n")
			}
		}
	}
	query("h105")
	query("web")
	query("unknown-host") // falls through to the real server
}

// Command ila runs the identifier-based routing application (§VIII-C3):
// clients address a service by identifier (ILA-style, embedded in the
// IPv6 destination); the serving host subscribes to the identifier, and
// migrating the service is a single subscription update — clients never
// learn the move.
package main

import (
	"fmt"
	"log"

	"camus/camus"
	"camus/internal/formats"
)

const webServiceID = 0xCAFE

func main() {
	app, err := camus.NewAppFromSpec(formats.ILA)
	if err != nil {
		log.Fatal(err)
	}
	net, err := camus.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}

	deployAt := func(host int) *camus.Deployment {
		f, err := app.ParseFilter(fmt.Sprintf("dst_identifier == %#x", webServiceID))
		if err != nil {
			log.Fatal(err)
		}
		subs := make([][]camus.Expr, len(net.Hosts))
		subs[host] = []camus.Expr{f}
		d, err := app.Deploy(net, subs, camus.DeployOptions{Policy: camus.TrafficReduction})
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	request := func(sim *camus.Sim, client int) {
		pkt := &formats.ILAPacket{Identifier: webServiceID, Locator: 0}
		out := sim.Publish(client, []*camus.Message{pkt.Message()}, 60)
		if len(out) == 0 {
			fmt.Printf("  client h%d → service: LOST\n", client)
			return
		}
		fmt.Printf("  client h%d → service reached at h%d (%d hops, %v)\n",
			client, out[0].Host, out[0].Hops, out[0].Latency)
	}

	fmt.Println("service", fmt.Sprintf("%#x", webServiceID), "running on h6:")
	sim, err := camus.Simulate(deployAt(6))
	if err != nil {
		log.Fatal(err)
	}
	request(sim, 0)
	request(sim, 13)

	fmt.Println("\nservice migrates to h11 (one subscription update):")
	sim2, err := camus.Simulate(deployAt(11))
	if err != nil {
		log.Fatal(err)
	}
	request(sim2, 0)
	request(sim2, 13)
	fmt.Println("\nclients kept using the same identifier; no DNS, no client change.")
}

// Command itchfeed runs the market-data filter application (§VIII-C1):
// a synthetic Nasdaq ITCH feed is published through a fat-tree network
// whose switches split MoldUDP batches and deliver each trading server
// exactly the stocks it subscribed to.
package main

import (
	"fmt"
	"log"

	"camus/camus"
	"camus/internal/formats"
	"camus/internal/workload"
)

func main() {
	app, err := camus.NewAppFromSpec(formats.ITCH)
	if err != nil {
		log.Fatal(err)
	}
	net, err := camus.FatTree(4)
	if err != nil {
		log.Fatal(err)
	}

	// Trading servers subscribe to stocks and price bands.
	subsSrc := map[int]string{
		2:  "stock == GOOGL",
		5:  "stock == GOOGL and price > 500",
		9:  "stock == S001 or stock == S002",
		14: "price > 900 and shares > 500",
	}
	subs := make([][]camus.Expr, len(net.Hosts))
	for host, src := range subsSrc {
		f, err := app.ParseFilter(src)
		if err != nil {
			log.Fatalf("host %d: %v", host, err)
		}
		subs[host] = []camus.Expr{f}
		fmt.Printf("host %2d subscribes: %s\n", host, src)
	}

	d, err := app.Deploy(net, subs, camus.DeployOptions{Policy: camus.TrafficReduction})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := camus.Simulate(d)
	if err != nil {
		log.Fatal(err)
	}

	// Publish a batched feed from host 0 through the wire codec: encode
	// MoldUDP datagrams, then parse them as the switch parser would (§VI).
	feed := workload.ITCHFeed(workload.ITCHFeedConfig{
		Packets: 2000, BatchZipf: true, InterestFraction: 0.05, Seed: 7,
	})
	delivered := make(map[int]int)
	for seq, pkt := range feed {
		wire, err := formats.EncodeITCHFeed("SIM", uint64(seq), pkt.Orders)
		if err != nil {
			log.Fatal(err)
		}
		msgs, err := formats.DecodeITCHFeed(wire)
		if err != nil {
			log.Fatal(err)
		}
		for _, dl := range sim.Publish(0, msgs, len(wire)) {
			delivered[dl.Host] += len(dl.Msgs)
		}
	}
	fmt.Println("\ndeliveries after 2000 packets:")
	for host := range subs {
		if n, ok := delivered[host]; ok {
			fmt.Printf("  host %2d received %5d messages\n", host, n)
		}
	}
	fmt.Printf("\ncore-layer packets: %d (multicast replicated in-network)\n",
		sim.Traffic().CorePackets)
	fmt.Printf("ToR entries: %d, Agg entries: %d, Core entries: %d\n",
		d.LayerEntries()[0], d.LayerEntries()[1], d.LayerEntries()[2])
}

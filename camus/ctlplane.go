package camus

import (
	"camus/internal/analysis/fitcheck"
	"camus/internal/ctlplane"
	"camus/internal/ctlplane/server"
	"camus/internal/routing"
)

// Control-plane surface, re-exported so examples and commands never
// import internal/ctlplane directly. The shape mirrors the dataplane
// facade: construct with functional options, read counters via
// snapshots.
type (
	// ControlPlane is the live subscription-churn service: per-switch
	// incremental compile + atomic install with coalescing, retries and
	// translation validation. Construct with NewControlPlane.
	ControlPlane = ctlplane.Service
	// ControlPlaneOption configures NewControlPlane, in the style of
	// SwitchOption.
	ControlPlaneOption = ctlplane.Option
	// CtlSnapshot is an immutable view of control-plane counters.
	CtlSnapshot = ctlplane.Snapshot
	// LatencyStats summarizes event→all-switches-applied latency.
	LatencyStats = ctlplane.LatencyStats
	// CtlEvent tracks one subscription change to full rollout.
	CtlEvent = ctlplane.Event
	// Installer applies compiled programs to a live switch.
	Installer = ctlplane.Installer
	// Validator certifies compiled programs before install.
	Validator = ctlplane.Validator
	// NetValidator certifies whole-deployment delivery invariants at
	// quiescent points.
	NetValidator = ctlplane.NetValidator
	// HostFilter is one live (filter, host) pair handed to a
	// NetValidator.
	HostFilter = ctlplane.HostFilter

	// FitModel is the static pipeline-fit admission model: a cached
	// fitcheck analyzer over installed programs. Construct with
	// NewFitModel (default Tofino-class budget) or
	// NewFitModelWith(budget).
	FitModel = fitcheck.Model
	// FitBudget is the per-stage/per-pipeline capacity envelope a
	// FitModel checks against.
	FitBudget = fitcheck.Budget

	// Tenants layers namespaces, quotas, token-bucket admission and
	// round-robin fairness over a ControlPlane.
	Tenants = ctlplane.Tenants
	// TenantOption configures NewTenants.
	TenantOption = ctlplane.TenantOption
	// TenantQuota bounds one tenant's footprint.
	TenantQuota = ctlplane.TenantQuota
	// TenantSnapshot is an immutable view of one tenant's counters.
	TenantSnapshot = ctlplane.TenantSnapshot

	// EventLog is the durable append-only control-plane log.
	EventLog = ctlplane.Log
	// EventLogOption tunes OpenEventLog.
	EventLogOption = ctlplane.LogOption
	// EventLogRecord is one durable control-plane event.
	EventLogRecord = ctlplane.LogRecord

	// Daemon is the assembled control-plane server (service + tenancy +
	// log + HTTP API). Construct with NewDaemon.
	Daemon = server.Daemon
	// DaemonOption configures NewDaemon.
	DaemonOption = server.Option
)

// Control-plane construction options.
var (
	// WithParallelism bounds per-switch compile fan-out (0 = GOMAXPROCS).
	WithParallelism = ctlplane.WithParallelism
	// WithInstallers wires live apply targets by switch ID.
	WithInstallers = ctlplane.WithInstallers
	// WithQueueDepth bounds in-flight events (backpressure).
	WithQueueDepth = ctlplane.WithQueueDepth
	// WithRetry bounds apply retry backoff and attempts.
	WithRetry = ctlplane.WithRetry
	// WithDrift sets the full-recompile fallback threshold.
	WithDrift = ctlplane.WithDrift
	// WithApplyHook injects a pre-install hook (fault injection).
	WithApplyHook = ctlplane.WithApplyHook
	// WithValidator certifies compiled programs, sampling every Nth batch.
	WithValidator = ctlplane.WithValidator
	// WithNetValidator certifies network-wide delivery invariants at
	// quiescent points, sampling every Nth quiescence.
	WithNetValidator = ctlplane.WithNetValidator
	// WithSeed makes retry jitter reproducible.
	WithSeed = ctlplane.WithSeed
	// WithCovering enables subsumption-aware state reduction: filters
	// implied by a broader filter on the same port get no table entry
	// of their own, and unsubscribing a covering filter re-installs
	// its children in the same atomic batch (no delivery gap). The
	// argument bounds each implication diagram (≤ 0 = default).
	WithCovering = ctlplane.WithCovering
	// WithAdmission enables static resource admission: every Subscribe
	// is fit-checked against the model before any registry mutation,
	// and oversized deltas fail with ErrAdmissionRejected, leaving all
	// control-plane state untouched.
	WithAdmission = ctlplane.WithAdmission
	// NewFitModel builds a FitModel with the default Tofino-class
	// budget.
	NewFitModel = fitcheck.NewModel
	// NewFitModelWith builds a FitModel with an explicit budget.
	NewFitModelWith = fitcheck.NewModelWith
	// DefaultFitBudget is the default Tofino-class FitBudget.
	DefaultFitBudget = fitcheck.DefaultBudget
	// ProveValidator builds a translation-validation Validator.
	ProveValidator = ctlplane.ProveValidator
	// NetcheckValidator builds a NetValidator that symbolically verifies
	// exact, loop-free delivery over the whole fat tree.
	NetcheckValidator = ctlplane.NetcheckValidator

	// WithDefaultQuota sets the quota for auto-created tenants.
	WithDefaultQuota = ctlplane.WithDefaultQuota
	// WithAutoCreate creates tenants on first use.
	WithAutoCreate = ctlplane.WithAutoCreate
	// WithEventLog attaches a durable log to a Tenants layer.
	WithEventLog = ctlplane.WithEventLog
	// NewTenants builds the tenancy layer over a ControlPlane.
	NewTenants = ctlplane.NewTenants

	// OpenEventLog opens (or resumes) a durable event log.
	OpenEventLog = ctlplane.OpenLog
	// WithFsyncInterval sets the log's group-commit window.
	WithFsyncInterval = ctlplane.WithFsyncInterval
	// WithFsyncEveryN bounds records per fsync batch.
	WithFsyncEveryN = ctlplane.WithFsyncEveryN

	// WithDaemonEventLog opens + replays a durable log inside NewDaemon.
	WithDaemonEventLog = server.WithEventLog
	// WithDaemonService forwards ControlPlaneOptions to the daemon's
	// service.
	WithDaemonService = server.WithService
	// WithDaemonTenancy forwards TenantOptions to the daemon's tenancy
	// layer.
	WithDaemonTenancy = server.WithTenancy
)

// Control-plane error classes (match with errors.Is).
var (
	// ErrUnknownTenant marks operations on a tenant never created.
	ErrUnknownTenant = ctlplane.ErrUnknownTenant
	// ErrQuotaExceeded marks a subscribe past MaxSubscriptions.
	ErrQuotaExceeded = ctlplane.ErrQuotaExceeded
	// ErrRateLimited marks an empty token bucket.
	ErrRateLimited = ctlplane.ErrRateLimited
	// ErrAdmissionRejected marks a subscribe the fit model refused:
	// the predicted entry delta would overflow a switch pipeline.
	ErrAdmissionRejected = ctlplane.ErrAdmissionRejected
)

// NewControlPlane builds the live control plane for a network and
// starts one apply worker per switch:
//
//	svc, err := camus.NewControlPlane(net, app.Spec,
//	    camus.WithPolicy(camus.TrafficReduction, 0),
//	    camus.WithInstallers(sim.Installers()...))
func NewControlPlane(net *Network, sp *Spec, opts ...ControlPlaneOption) (*ControlPlane, error) {
	return ctlplane.New(net, sp, opts...)
}

// WithPolicy selects the routing policy and discretization α for a
// control plane (the facade cousin of DeployOptions).
func WithPolicy(p routing.Policy, alpha int64) ControlPlaneOption {
	return ctlplane.WithRouting(routing.Options{Policy: p, Alpha: alpha})
}

// NewDaemon assembles the multi-tenant control-plane daemon: service,
// tenancy layer, optional durable log (replayed before serving), and
// the HTTP+JSON API with /metrics and /healthz:
//
//	d, err := camus.NewDaemon(net, app.Spec,
//	    camus.WithDaemonEventLog("camusd.log"),
//	    camus.WithDaemonService(camus.WithInstallers(sim.Installers()...)),
//	    camus.WithDaemonTenancy(camus.WithAutoCreate()))
//	addr, err := d.Start(":8080")
func NewDaemon(net *Network, sp *Spec, opts ...DaemonOption) (*Daemon, error) {
	return server.New(net, sp, opts...)
}

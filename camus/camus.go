// Package camus is the public API of the Camus packet-subscription
// system — an implementation of "Forwarding and Routing with Packet
// Subscriptions" (Jepsen et al., CoNEXT 2020 / ToN 2022).
//
// A packet subscription is a stateful predicate over application-defined
// packet fields that determines a forwarding decision. Camus compiles
// sets of subscriptions into match-action pipeline tables via a BDD, and
// routes on subscriptions across fat-tree or general topologies.
//
// Typical use:
//
//	app, _ := camus.NewApp("itch", specSource)
//	rules, _ := app.ParseRules(`stock == GOOGL and price > 50: fwd(1)`)
//	prog, _ := app.Compile(rules)
//	sw, _ := app.NewSwitch("tor-1", prog)
//	out := sw.Process(&camus.Packet{In: 0, Msgs: []*camus.Message{msg}}, 0)
package camus

import (
	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/netsim"
	"camus/internal/pipeline"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Re-exported core types. The aliases make the public surface usable
// without importing internal packages.
type (
	// Spec is an application message-format specification (paper Fig. 4).
	Spec = spec.Spec
	// Message is a decoded packet presented to the pipeline.
	Message = spec.Message
	// Value is a field value.
	Value = spec.Value
	// Rule is a subscription with its forwarding directive.
	Rule = subscription.Rule
	// Expr is a filter expression.
	Expr = subscription.Expr
	// ActionSet is a merged forwarding outcome.
	ActionSet = subscription.ActionSet
	// Program is a compiled switch configuration.
	Program = compiler.Program
	// Resources summarizes switch resource usage (Table I).
	Resources = compiler.Resources
	// Switch is the software dataplane: a concurrent, sharded switch.
	// Configure it only via SwitchOptions at NewSwitch time; read
	// counters only via its Stats() snapshot method.
	Switch = pipeline.Switch
	// StatsSnapshot is an immutable copy of a switch's counters.
	StatsSnapshot = pipeline.StatsSnapshot
	// LeafCacheStats is a point-in-time view of a switch's hot-rule
	// leaf cache (DESIGN.md §16); read it via Switch.LeafCacheStats().
	LeafCacheStats = pipeline.LeafCacheStats
	// Packet is a (possibly batched) packet traversing a switch.
	Packet = pipeline.Packet
	// FlowKey identifies a packet's stream for stream subscriptions
	// (§VII-B).
	FlowKey = pipeline.FlowKey
	// Delivery is one egress replica.
	Delivery = pipeline.Delivery
	// Publication is one host's packet injection for Sim.PublishBatch.
	Publication = netsim.Publication
	// Network is a topology instance.
	Network = topology.Network
	// Deployment is a controller-compiled network.
	Deployment = controller.Deployment
	// Sim is the network simulator.
	Sim = netsim.Sim
)

// Value constructors.
var (
	// IntVal builds an integer value.
	IntVal = spec.IntVal
	// StrVal builds a string value.
	StrVal = spec.StrVal
)

// BDD field-order heuristics (§V-C).
const (
	// SpecOrder follows spec declaration order (the default).
	SpecOrder = bdd.SpecOrder
	// SelectivityOrder tests the most-constrained fields first.
	SelectivityOrder = bdd.SelectivityOrder
	// ReverseSpecOrder reverses SpecOrder (worst-case ablation).
	ReverseSpecOrder = bdd.ReverseSpecOrder
)

// Routing policies (§IV-C).
const (
	// MemoryReduction minimizes switch memory; unmatched traffic climbs
	// to the core.
	MemoryReduction = routing.MemoryReduction
	// TrafficReduction minimizes traffic; switches store every remote
	// subscription.
	TrafficReduction = routing.TrafficReduction
)

// ParseSpec parses a message-format specification (the Fig. 4 DSL).
func ParseSpec(name, src string) (*Spec, error) { return spec.Parse(name, src) }

// MergeSpecs combines application specs for co-existence on one switch.
func MergeSpecs(name string, specs ...*Spec) (*Spec, error) { return spec.Merge(name, specs...) }

// FatTree builds a k-ary fat-tree topology (k=4 is the paper's
// 20-switch/16-host instance).
func FatTree(k int) (*Network, error) { return topology.FatTree(k) }

// App binds a message spec to a parser and static pipeline: everything
// that is fixed once per application (§V-A).
type App struct {
	Spec   *Spec
	Static *compiler.StaticPipeline

	parser *subscription.Parser
}

// NewApp parses the spec and generates the static pipeline.
func NewApp(name, specSrc string) (*App, error) {
	sp, err := spec.Parse(name, specSrc)
	if err != nil {
		return nil, err
	}
	return NewAppFromSpec(sp)
}

// NewAppFromSpec wraps an existing Spec (e.g. one of internal/formats').
func NewAppFromSpec(sp *Spec) (*App, error) {
	static, err := compiler.GenerateStatic(sp, compiler.StaticOptions{})
	if err != nil {
		return nil, err
	}
	return &App{Spec: sp, Static: static, parser: subscription.NewParser(sp)}, nil
}

// ParseFilter parses a bare filter expression.
func (a *App) ParseFilter(src string) (Expr, error) { return a.parser.ParseFilter(src) }

// ParseRules parses a rule file ("filter: fwd(p)" per line).
func (a *App) ParseRules(src string) ([]*Rule, error) { return a.parser.ParseRules(src) }

// CompileOption tunes compilation.
type CompileOption func(*compiler.Options)

// LastHop marks the program as host-facing: stateful predicates are
// evaluated and updated (§II).
func LastHop() CompileOption {
	return func(o *compiler.Options) { o.LastHop = true }
}

// FieldOrder overrides the BDD variable-order heuristic.
func FieldOrder(order bdd.FieldOrder) CompileOption {
	return func(o *compiler.Options) { o.BDD.Order = order }
}

// Compile runs the dynamic compilation step: rules → pipeline tables.
func (a *App) Compile(rules []*Rule, opts ...CompileOption) (*Program, error) {
	var o compiler.Options
	for _, fn := range opts {
		fn(&o)
	}
	return compiler.Compile(a.Spec, rules, o)
}

// SwitchOption tunes a switch at construction time — the only way to
// configure the dataplane. The resulting configuration is frozen into
// the switch, so no caller can reach racy mutable state.
type SwitchOption = pipeline.Option

// Switch construction options.
var (
	// WithBaseLatency sets the one-pass pipeline transit time.
	WithBaseLatency = pipeline.WithBaseLatency
	// WithRecirculationLatency sets the added cost of one
	// recirculation pass (§VI-B).
	WithRecirculationLatency = pipeline.WithRecirculationLatency
	// WithFlowCache sizes the stream-subscription cache (§VII-B).
	WithFlowCache = pipeline.WithFlowCache
	// WithLeafCache sizes the hot-rule leaf cache that memoizes final
	// forwarding decisions in front of the match stages (DESIGN.md
	// §16): 0 keeps the default 65536 entries (the cache is on by
	// default), negative disables it.
	WithLeafCache = pipeline.WithLeafCache
	// WithWorkers sets the number of dataplane worker shards that
	// ProcessBatch fans packets out across.
	WithWorkers = pipeline.WithWorkers
	// WithIngressDrop controls suppression of forwarding a packet back
	// out its ingress port.
	WithIngressDrop = pipeline.WithIngressDrop
)

// NewSwitch instantiates a software switch running a compiled program:
//
//	sw, err := app.NewSwitch("tor-1", prog,
//	    camus.WithWorkers(8),
//	    camus.WithFlowCache(1<<16, 30*time.Second))
func (a *App) NewSwitch(id string, prog *Program, opts ...SwitchOption) (*Switch, error) {
	return pipeline.NewSwitch(id, a.Static, prog, opts...)
}

// Incremental is the dynamic-filter compiler: rules are added and
// removed one at a time and each update reports the control-plane entry
// delta (§V's incremental algorithm sketch).
type Incremental = compiler.Incremental

// IncrementalUpdate is one incremental recompilation result.
type IncrementalUpdate = compiler.Update

// NewIncremental creates an incremental compiler for the app.
func (a *App) NewIncremental(opts ...CompileOption) (*Incremental, error) {
	var o compiler.Options
	for _, fn := range opts {
		fn(&o)
	}
	return compiler.NewIncremental(a.Spec, o)
}

// NewMessage allocates an empty message for the app's spec.
func (a *App) NewMessage() *Message { return spec.NewMessage(a.Spec) }

// DeployOptions configure a network deployment.
type DeployOptions struct {
	// Policy is the routing policy (default TrafficReduction).
	Policy routing.Policy
	// Alpha is the discretization unit α (§IV-D); 0 disables.
	Alpha int64
}

// Deploy computes routing and compiles every switch of a topology for
// per-host subscriptions (the controller's job, §III).
func (a *App) Deploy(net *Network, subsByHost [][]Expr, opts DeployOptions) (*Deployment, error) {
	return controller.Deploy(net, a.Spec, subsByHost, controller.Options{
		Routing: routing.Options{Policy: opts.Policy, Alpha: opts.Alpha},
	})
}

// Simulate instantiates the network simulator over a deployment.
func Simulate(d *Deployment) (*Sim, error) { return netsim.New(d) }

// EvalRules evaluates rules against a message by brute force — the
// reference semantics, useful for testing user rule sets.
func EvalRules(rules []*Rule, m *Message) ActionSet {
	return subscription.MatchActions(rules, m, nil)
}

// Describe renders a compiled program's tables (Fig. 6 style).
func Describe(p *Program) string { return p.String() }

// Version identifies the library.
const Version = "1.0.0"

package camus

import (
	"strings"
	"testing"
	"time"

	"camus/internal/formats"
	"camus/internal/routing"
)

const itchSpecSrc = `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`

func TestQuickstartFlow(t *testing.T) {
	app, err := NewApp("itch", itchSpecSrc)
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	rules, err := app.ParseRules(`
stock == GOOGL and price > 50: fwd(1)
stock == MSFT: fwd(2)
`)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	prog, err := app.Compile(rules)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sw, err := app.NewSwitch("s1", prog)
	if err != nil {
		t.Fatalf("NewSwitch: %v", err)
	}
	m := app.NewMessage()
	m.MustSet("stock", StrVal("GOOGL"))
	m.MustSet("price", IntVal(60))
	m.MustSet("shares", IntVal(10))
	out := sw.Process(&Packet{In: 0, Msgs: []*Message{m}}, 0)
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("deliveries = %+v", out)
	}
	// Reference semantics agree.
	if got := EvalRules(rules, m).Key(); got != "fwd(1)" {
		t.Errorf("EvalRules = %s", got)
	}
	if !strings.Contains(Describe(prog), "table") {
		t.Error("Describe output empty")
	}
}

func TestDeployAndSimulate(t *testing.T) {
	app, err := NewApp("itch", itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	net, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([][]Expr, len(net.Hosts))
	f, err := app.ParseFilter("stock == GOOGL")
	if err != nil {
		t.Fatal(err)
	}
	subs[5] = []Expr{f}
	d, err := app.Deploy(net, subs, DeployOptions{Policy: TrafficReduction})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	sim, err := Simulate(d)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	m := app.NewMessage()
	m.MustSet("stock", StrVal("GOOGL"))
	m.MustSet("price", IntVal(1))
	m.MustSet("shares", IntVal(1))
	out := sim.Publish(0, []*Message{m}, 64)
	if len(out) != 1 || out[0].Host != 5 {
		t.Fatalf("deliveries = %+v", out)
	}
}

// TestSwitchOptions: the functional-options surface is the one way to
// configure a switch, and stats are only reachable as snapshots.
func TestSwitchOptions(t *testing.T) {
	app, err := NewApp("itch", itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := app.ParseRules("stock == GOOGL: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := app.Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := app.NewSwitch("s1", prog,
		WithWorkers(4),
		WithFlowCache(1024, time.Second),
		WithBaseLatency(time.Microsecond),
		WithRecirculationLatency(2*time.Microsecond),
		WithIngressDrop(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sw.Config()
	if cfg.Workers != 4 || cfg.FlowCacheSize != 1024 || cfg.FlowTTL != time.Second ||
		cfg.BaseLatency != time.Microsecond || cfg.RecirculationLatency != 2*time.Microsecond ||
		cfg.DropOnIngressPort {
		t.Fatalf("config = %+v", cfg)
	}
	if sw.Workers() != 4 {
		t.Errorf("Workers() = %d", sw.Workers())
	}

	m := app.NewMessage()
	m.MustSet("stock", StrVal("GOOGL"))
	m.MustSet("price", IntVal(60))
	m.MustSet("shares", IntVal(1))

	// WithIngressDrop(false): the packet may return out its ingress port.
	out := sw.Process(&Packet{In: 1, Msgs: []*Message{m}}, 0)
	if len(out) != 1 || out[0].Port != 1 || out[0].Latency != time.Microsecond {
		t.Fatalf("deliveries = %+v", out)
	}

	// Batches work through the public alias, and stats snapshot/reset.
	batch := sw.ProcessBatch([]*Packet{{In: 0, Msgs: []*Message{m}}}, 0)
	if len(batch) != 1 || len(batch[0]) != 1 {
		t.Fatalf("batch = %+v", batch)
	}
	if st := sw.Stats(); st.Packets != 2 || st.Matched != 2 {
		t.Errorf("stats = %+v", st)
	}
	sw.ResetStats()
	if st := sw.Stats(); st != (StatsSnapshot{}) {
		t.Errorf("after reset: %+v", st)
	}
}

func TestNewAppFromFormats(t *testing.T) {
	app, err := NewAppFromSpec(formats.INT)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := app.ParseRules("switch_id == 2 and hop_latency > 100: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := app.Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	r := &formats.INTReport{SwitchID: 2, HopLatency: 150}
	if got := prog.Eval(r.Message(), nil).Key(); got != "fwd(1)" {
		t.Errorf("eval = %s", got)
	}
}

func TestCompileOptions(t *testing.T) {
	app, err := NewApp("itch", itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := app.ParseRules("stock == GOOGL and avg(price) > 60: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	lastHop, err := app.Compile(rules, LastHop())
	if err != nil {
		t.Fatal(err)
	}
	if lastHop.Resources.Registers != 1 {
		t.Errorf("LastHop registers = %d, want 1", lastHop.Resources.Registers)
	}
	transit, err := app.Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	if transit.Resources.Registers != 0 {
		t.Errorf("transit registers = %d, want 0", transit.Resources.Registers)
	}
}

func TestMergeSpecsAPI(t *testing.T) {
	merged, err := MergeSpecs("multi", formats.ITCH, formats.INT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAppFromSpec(merged); err == nil {
		// ITCH(4 sub fields) + INT(5) + leaf > 12 stages: expect error
		// from the stage budget, or success if within — either way the
		// API must not panic. Check consistency with the budget.
		n := len(merged.SubscribableFields())
		if n+1 > 12 {
			t.Errorf("NewAppFromSpec accepted %d stages over budget", n+1)
		}
	}
	_ = routing.MemoryReduction // keep import symmetry
}

func TestIncrementalAPI(t *testing.T) {
	app, err := NewApp("itch", itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := app.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := app.ParseRules("stock == GOOGL: fwd(1)\nstock == MSFT: fwd(2)")
	if err != nil {
		t.Fatal(err)
	}
	up, err := inc.Add(rules...)
	if err != nil {
		t.Fatal(err)
	}
	if up.AddedEntries == 0 {
		t.Errorf("no entries added: %+v", up)
	}
	m := app.NewMessage()
	m.MustSet("stock", StrVal("MSFT"))
	m.MustSet("price", IntVal(1))
	m.MustSet("shares", IntVal(1))
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd(2)" {
		t.Errorf("eval = %s", got)
	}
	if _, err := inc.Remove(rules[1].ID); err != nil {
		t.Fatal(err)
	}
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd()" {
		t.Errorf("after remove: %s", got)
	}
}

func TestBadSpecErrors(t *testing.T) {
	if _, err := NewApp("x", "not a spec"); err == nil {
		t.Error("bad spec accepted")
	}
	app, err := NewApp("itch", itchSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.ParseRules("bogus_field == 1: fwd(1)"); err == nil {
		t.Error("bad rule accepted")
	}
}

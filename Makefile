# Tier-1 verification gate (documented in ROADMAP.md): every PR must
# leave `make check` green.
GO ?= go

.PHONY: check vet lint build test race bench bench-report perf-guard fuzz-smoke fuzz-extended vet-report churn-soak serve-soak soak prove netcheck fit

## check: the full tier-1 gate — vet, custom analyzers, build,
## race-enabled tests, a short churn soak, a serve soak of the
## multi-tenant daemon, a short fuzz smoke, a translation-validation
## pass over the shipped rules, a network-wide delivery certification
## of the shipped rules, a static pipeline-fit certification of the
## shipped rules, and a smoke run of the parallel dataplane benchmark.
check: vet lint build race churn-soak serve-soak fuzz-smoke prove netcheck fit bench

## prove: certify the shipped sample rules with the translation
## validator (camusc prove), in both last-hop and upstream modes, and
## once through the parallel compile path (the prover is downstream of
## the worker-pool compiler, so this run certifies parallel output).
prove:
	$(GO) run ./cmd/camusc prove -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules
	$(GO) run ./cmd/camusc prove -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -last-hop=false
	$(GO) run ./cmd/camusc prove -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -parallelism 4

## netcheck: network-wide delivery certification (DESIGN.md §13) of
## the shipped rule sets — the itch.rules sample over a fat-tree(4)
## under both routing policies, over a random MST++ topology with α
## overshoot, the itchfeed example's subscriptions, and the itch.rules
## sample again with subsumption covering enabled on both topologies
## (DESIGN.md §14 — the covered tables must deliver identically to the
## full ones). Every run must certify clean: no black holes, no loops,
## exact delivery.
netcheck:
	$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules
	$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -policy mr -alpha 10
	$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -topo mstpp -nodes 24 -alpha 100
	$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itchfeed.rules
	$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -covering
	$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -topo mstpp -nodes 24 -covering

## fit: static pipeline-fit certification (DESIGN.md §15) of the
## shipped rule sets — every table must place within the modeled
## per-stage SRAM/TCAM/key-width budgets in one pipeline pass, with
## positive entry headroom. Exit 1 on any overflow finding.
fit:
	$(GO) run ./cmd/camusc fit -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules
	$(GO) run ./cmd/camusc fit -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itchfeed.rules

vet:
	$(GO) vet ./...

## lint: the Camus-specific static analyzers (internal/analysis) over
## the whole module, test files included.
lint:
	$(GO) run ./cmd/camus-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -timeout 30m: internal/experiments compiles paper-scale workloads in
# every figure test; under the race detector on a single-core host the
# package runs close to the default 10m per-package limit.
race:
	$(GO) test -race -timeout 30m ./...

## bench: one-iteration smoke of the worker-sweep, leaf-cache fast
## path, live-churn, daemon and network-verifier benchmarks (fast).
bench:
	$(GO) test -run '^$$' -bench='SwitchParallel|SwitchFastPath|Churn|CtlplaneDaemon|Netcheck' -benchtime=1x .

## bench-report: regenerate bench-report.txt with steady-state numbers
## (host header from TestMain records NumCPU / GOMAXPROCS), then emit
## the machine-readable companions: BENCH_compile.json for the
## CompileParallel worker sweep, BENCH_switch.json for the
## SwitchParallel and leaf-cache SwitchFastPath sweeps (ns/op,
## allocs/op, Mpps, host shape), and BENCH_ctlplane.json for the
## multi-tenant daemon (updates/s and client-observed p50/p99 request
## latency over the HTTP API) plus the covering-heavy churn run
## (routing-entry reduction ratio).
bench-report:
	$(GO) test -run '^$$' -bench='SwitchParallel|SwitchFastPath|Churn|CompileParallel|CtlplaneDaemon|Netcheck|Fitcheck' -benchmem . | tee bench-report.txt
	$(GO) run ./cmd/benchjson -filter 'CompileParallel|^Churn$$|Netcheck|Fitcheck' -out BENCH_compile.json < bench-report.txt
	$(GO) run ./cmd/benchjson -filter 'SwitchParallel|SwitchFastPath' -out BENCH_switch.json < bench-report.txt
	$(GO) run ./cmd/benchjson -filter 'CtlplaneDaemon|CoverChurn' -out BENCH_ctlplane.json < bench-report.txt

## perf-guard: the CI allocation guard — run the two canonical
## compiler benchmarks, the network-delivery verifier, the static
## fit analyzer, and the covering-heavy churn benchmark once and fail
## on a >2x allocs/op regression against the checked-in baseline
## (perf-baseline.json). The single-worker leaf-cache fast path runs
## 50 steady-state batches and is held to an exact zero-alloc baseline
## plus ≥0.9x its recorded Mpps. BenchmarkCoverChurn also
## self-enforces its ≥2× entry-reduction bar.
perf-guard:
	{ $(GO) test -run '^$$' -bench '^BenchmarkCompile500$$|^BenchmarkIncrementalAddOne$$' -benchtime 1x -benchmem ./internal/compiler; \
	  $(GO) test -run '^$$' -bench '^BenchmarkNetcheck$$|^BenchmarkCoverChurn$$|^BenchmarkFitcheck$$' -benchtime 1x -benchmem .; \
	  $(GO) test -run '^$$' -bench '^BenchmarkSwitchFastPath$$/^workers=1$$' -benchtime 50x -benchmem .; } \
		| $(GO) run ./cmd/benchjson -baseline perf-baseline.json -max-ratio 2

## churn-soak: race-enabled soak of the live control plane — churn +
## concurrent traffic through the netsim switches, plus the covering
## variants: a covering-heavy churn run and the uncovering epoch-swap
## consistency check (~5s). The 1000-event net-validated covering twin
## (TestCoveringChurnNetValidated) runs in the full `race` target.
churn-soak:
	$(GO) test -race -count=1 -run 'TestChurnSoak|TestLiveChurn|TestHotSwapEpochConsistency|TestCoveringChurn$$|TestUncoverEpochConsistency' ./internal/netsim

## serve-soak: end-to-end soak of the multi-tenant daemon — an
## in-process camusd with a durable event log, 1000 tenants of
## Zipf-skewed churn driven through the HTTP API by concurrent
## tenant-sharded workers, translation validation sampling every 16th
## batch. Fails on any HTTP error, apply failure, validation failure,
## or unhealthy /healthz. Runs with -covering so the soak also
## exercises subsumption covering under multi-tenant churn.
serve-soak:
	$(GO) run ./cmd/camus-sim -serve -tenants 1000 -churn 1000 -validate-every 16 -seed 7 -covering

## soak: the longer churn soak (CAMUS_SOAK widens the event stream).
soak:
	CAMUS_SOAK=1 $(GO) test -race -count=1 -v -run 'TestChurnSoak' ./internal/netsim

## fuzz-smoke: short, deterministic iterations of the fuzz targets —
## the subscription parser and the compile-then-prove pipeline (seed
## corpus plus a few hundred mutations each).
fuzz-smoke:
	$(GO) test ./internal/subscription -run '^$$' -fuzz '^FuzzParseSubscription$$' -fuzztime 200x
	$(GO) test ./internal/analysis/prove -run '^$$' -fuzz '^FuzzCompileProve$$' -fuzztime 200x

## fuzz-extended: the nightly-CI fuzz budget — minutes, not mutations.
fuzz-extended:
	$(GO) test ./internal/subscription -run '^$$' -fuzz '^FuzzParseSubscription$$' -fuzztime 120s
	$(GO) test ./internal/analysis/prove -run '^$$' -fuzz '^FuzzCompileProve$$' -fuzztime 300s

## vet-report: regenerate vet-report.txt by cross-running `camusc vet`
## (rule self-consistency), `camusc prove` (translation validation) and
## `camusc fit` (static pipeline-layout certification) over the
## rule-verifier corpus (findings are the point, so exit 1 is ok).
vet-report:
	@rm -f vet-report.txt
	@for f in internal/analysis/rulecheck/testdata/corpus/*.rules; do \
		echo "== camusc vet -spec market.spec -rules $$(basename $$f) ==" >> vet-report.txt; \
		$(GO) run ./cmd/camusc vet -spec internal/analysis/rulecheck/testdata/corpus/market.spec -rules $$f >> vet-report.txt || true; \
		echo "== camusc prove -spec market.spec -rules $$(basename $$f) ==" >> vet-report.txt; \
		$(GO) run ./cmd/camusc prove -spec internal/analysis/rulecheck/testdata/corpus/market.spec -rules $$f >> vet-report.txt || true; \
		echo "== camusc fit -spec market.spec -rules $$(basename $$f) ==" >> vet-report.txt; \
		$(GO) run ./cmd/camusc fit -spec internal/analysis/rulecheck/testdata/corpus/market.spec -rules $$f >> vet-report.txt 2>&1 || true; \
	done
	@echo "== camusc vet -spec itch.spec -rules itch.rules ==" >> vet-report.txt
	@$(GO) run ./cmd/camusc vet -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules >> vet-report.txt || true
	@echo "== camusc prove -spec itch.spec -rules itch.rules ==" >> vet-report.txt
	@$(GO) run ./cmd/camusc prove -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules >> vet-report.txt || true
	@echo "== camusc netcheck -spec itch.spec -rules itch.rules ==" >> vet-report.txt
	@$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules >> vet-report.txt || true
	@echo "== camusc netcheck -spec itch.spec -rules itch.rules -topo mstpp ==" >> vet-report.txt
	@$(GO) run ./cmd/camusc netcheck -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules -topo mstpp -nodes 24 -alpha 100 >> vet-report.txt || true
	@echo "== camusc fit -spec itch.spec -rules itch.rules ==" >> vet-report.txt
	@$(GO) run ./cmd/camusc fit -spec cmd/camusc/testdata/itch.spec -rules cmd/camusc/testdata/itch.rules >> vet-report.txt || true
	@cat vet-report.txt

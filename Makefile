# Tier-1 verification gate (documented in ROADMAP.md): every PR must
# leave `make check` green.
GO ?= go

.PHONY: check vet build test race bench bench-report

## check: the full tier-1 gate — vet, build, race-enabled tests, and a
## smoke run of the parallel dataplane benchmark.
check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one-iteration smoke of the worker-sweep benchmark (fast).
bench:
	$(GO) test -run '^$$' -bench=SwitchParallel -benchtime=1x .

## bench-report: regenerate bench-report.txt with steady-state numbers.
bench-report:
	$(GO) test -run '^$$' -bench=SwitchParallel . | tee bench-report.txt
